"""Kronecker-structured workloads over product domains.

Real deployments rarely have purely binary attributes; queries over a
product domain ``d_1 x ... x d_k`` (age group x region x device, ...)
factor as Kronecker products of small per-attribute query matrices.  This
module provides:

* :class:`KronWorkload` — ``W = F_k (x) ... (x) F_1`` with the Gram matrix,
  Frobenius norm and mat-vec products computed factor-wise (never forming
  the full ``W`` unless it is small);
* general marginal workloads over arbitrary-arity attributes
  (:func:`product_marginals`, :func:`all_product_marginals`,
  :func:`k_way_product_marginals`), generalizing the binary
  :mod:`repro.workloads.marginals`.

Conventions: attribute 0 is the fastest-varying index of the flat domain
(matching :class:`repro.domains.ProductDomain`), so the flat matrix is
``kron(F_{k-1}, ..., F_0)``.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.domains import ProductDomain
from repro.exceptions import WorkloadError
from repro.linalg.kron import (
    apply_kron_factors as _apply_factors,
    check_dense_allocation,
    dense_kron as _kron_all,
)
from repro.workloads.base import MAX_EXPLICIT_ENTRIES, Workload


class KronWorkload(Workload):
    """A workload that factors over the attributes of a product domain.

    Parameters
    ----------
    factors:
        One query matrix per attribute, attribute 0 first; factor ``i`` has
        shape ``(p_i, d_i)``.
    max_explicit_entries:
        Cell cap for ``matrix`` and the dense ``gram()``; exceeding it
        raises :class:`~repro.exceptions.AllocationCapError` (a
        ``ValueError`` naming the would-be allocation) instead of
        attempting a multi-GB ``np.kron``.

    Examples
    --------
    >>> import numpy as np
    >>> cdf_by_group = KronWorkload([np.tril(np.ones((3, 3))), np.eye(2)])
    >>> cdf_by_group.num_queries, cdf_by_group.domain_size
    (6, 6)
    """

    def __init__(
        self,
        factors: list[np.ndarray],
        name: str = "Kron",
        max_explicit_entries: int = MAX_EXPLICIT_ENTRIES,
    ) -> None:
        if not factors:
            raise WorkloadError("KronWorkload needs at least one factor")
        self.factors = [np.asarray(factor, dtype=float) for factor in factors]
        for factor in self.factors:
            if factor.ndim != 2:
                raise WorkloadError("Kron factors must be 2-D matrices")
        self.max_explicit_entries = max_explicit_entries
        num_queries = 1
        domain_size = 1
        for factor in self.factors:
            num_queries *= factor.shape[0]
            domain_size *= factor.shape[1]
        super().__init__(domain_size, num_queries, name)

    @property
    def matrix(self) -> np.ndarray:
        return _kron_all(
            self.factors, self.max_explicit_entries, what="Kron workload matrix"
        )

    def factor_grams(self) -> list[np.ndarray]:
        """Per-factor Gram matrices ``C_i = F_i^T F_i`` (attribute 0 first).

        The flat Gram factorizes as ``C = C_{k-1} (x) ... (x) C_0``; the
        factored optimizer and huge-domain paths consume this list and
        never form the flat product.

        Examples
        --------
        >>> import numpy as np
        >>> workload = KronWorkload([np.eye(2), np.ones((1, 3))])
        >>> [gram.shape for gram in workload.factor_grams()]
        [(2, 2), (3, 3)]
        """
        return [factor.T @ factor for factor in self.factors]

    def _compute_gram(self) -> np.ndarray:
        check_dense_allocation(
            (self.domain_size, self.domain_size),
            self.max_explicit_entries,
            what="Kron workload Gram matrix",
        )
        return _kron_all(self.factor_grams(), max_entries=None)

    def frobenius_norm_squared(self) -> float:
        product = 1.0
        for factor in self.factors:
            product *= float(np.sum(factor**2))
        return product

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_domain_vector(x)
        return _apply_factors(self.factors, x)

    def rmatvec(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=float)
        if a.shape != (self.num_queries,):
            raise WorkloadError(
                f"expected {self.num_queries} query values, got shape {a.shape}"
            )
        return _apply_factors([factor.T for factor in self.factors], a)


class ProductMarginalsWorkload(Workload):
    """Marginals over arbitrary-arity attribute subsets.

    The marginal on subset ``S`` is the Kron workload with ``I_{d_i}`` for
    attributes in ``S`` and the total row ``1^T`` elsewhere; the workload
    stacks the marginals of every requested subset.
    """

    def __init__(
        self,
        domain: ProductDomain,
        subsets: list[tuple[int, ...]],
        name: str = "ProductMarginals",
        max_explicit_entries: int = MAX_EXPLICIT_ENTRIES,
    ) -> None:
        if not subsets:
            raise WorkloadError("needs at least one attribute subset")
        for subset in subsets:
            if any(not 0 <= a < domain.num_attributes for a in subset):
                raise WorkloadError(f"subset {subset} outside the attributes")
            if len(set(subset)) != len(subset):
                raise WorkloadError(f"subset {subset} repeats an attribute")
        self.product_domain = domain
        self.subsets = [tuple(sorted(subset)) for subset in subsets]
        self.max_explicit_entries = max_explicit_entries
        self._blocks = [
            KronWorkload(
                self._factors(subset),
                name=f"marginal{subset}",
                max_explicit_entries=max_explicit_entries,
            )
            for subset in self.subsets
        ]
        super().__init__(
            domain.size, sum(block.num_queries for block in self._blocks), name
        )

    def _factors(self, subset: tuple[int, ...]) -> list[np.ndarray]:
        keep = set(subset)
        return [
            np.eye(size) if index in keep else np.ones((1, size))
            for index, size in enumerate(self.product_domain.sizes)
        ]

    @property
    def matrix(self) -> np.ndarray:
        check_dense_allocation(
            (self.num_queries, self.domain_size),
            self.max_explicit_entries,
            what="product-marginals workload matrix",
        )
        return np.vstack([block.matrix for block in self._blocks])

    def gram_factor_blocks(self) -> list[list[np.ndarray]]:
        """Per-subset, per-attribute Gram factors of the flat Gram.

        The flat Gram is ``C = sum_S C_S`` with each marginal's
        ``C_S = C_{S,k-1} (x) ... (x) C_{S,0}`` where ``C_{S,i}`` is
        ``I_{d_i}`` for attributes in ``S`` and the all-ones ``d_i x d_i``
        matrix otherwise.  This is the representation the factored
        optimizer consumes; memory is ``O(len(subsets) * sum_i d_i^2)``.

        Examples
        --------
        >>> workload = product_marginals((2, 3), [(0,), (0, 1)])
        >>> [[gram.shape for gram in block]
        ...  for block in workload.gram_factor_blocks()]
        [[(2, 2), (3, 3)], [(2, 2), (3, 3)]]
        """
        return [block.factor_grams() for block in self._blocks]

    def _compute_gram(self) -> np.ndarray:
        check_dense_allocation(
            (self.domain_size, self.domain_size),
            self.max_explicit_entries,
            what="product-marginals Gram matrix",
        )
        gram = np.zeros((self.domain_size, self.domain_size))
        for block in self._blocks:
            gram += block.gram()
        return gram

    def frobenius_norm_squared(self) -> float:
        # Product identity per marginal: ||I||_F^2 = d_i for kept
        # attributes, ||1^T||_F^2 = d_i for summed-out ones, so every
        # subset contributes prod_i d_i = n without touching any matrix.
        return sum(block.frobenius_norm_squared() for block in self._blocks)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_domain_vector(x)
        return np.concatenate([block.matvec(x) for block in self._blocks])

    def rmatvec(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=float)
        if a.shape != (self.num_queries,):
            raise WorkloadError(
                f"expected {self.num_queries} query values, got shape {a.shape}"
            )
        result = np.zeros(self.domain_size)
        offset = 0
        for block in self._blocks:
            result += block.rmatvec(a[offset : offset + block.num_queries])
            offset += block.num_queries
        return result


def product_marginals(
    sizes: tuple[int, ...], subsets: list[tuple[int, ...]]
) -> ProductMarginalsWorkload:
    """Marginals on explicit attribute subsets of a product domain."""
    return ProductMarginalsWorkload(ProductDomain(tuple(sizes)), subsets)


def all_product_marginals(sizes: tuple[int, ...]) -> ProductMarginalsWorkload:
    """All ``2^k`` marginals (including the total) — ``prod(1 + d_i)`` queries."""
    domain = ProductDomain(tuple(sizes))
    attributes = range(domain.num_attributes)
    subsets: list[tuple[int, ...]] = []
    for size in range(domain.num_attributes + 1):
        subsets.extend(combinations(attributes, size))
    return ProductMarginalsWorkload(domain, subsets, name="AllProductMarginals")


def k_way_product_marginals(
    sizes: tuple[int, ...], way: int
) -> ProductMarginalsWorkload:
    """All marginals on exactly ``way`` attributes of a product domain."""
    domain = ProductDomain(tuple(sizes))
    if not 1 <= way <= domain.num_attributes:
        raise WorkloadError(
            f"way must be in [1, {domain.num_attributes}], got {way}"
        )
    subsets = list(combinations(range(domain.num_attributes), way))
    return ProductMarginalsWorkload(
        domain, subsets, name=f"{way}-Way ProductMarginals"
    )
