"""Kronecker-structured workloads over product domains.

Real deployments rarely have purely binary attributes; queries over a
product domain ``d_1 x ... x d_k`` (age group x region x device, ...)
factor as Kronecker products of small per-attribute query matrices.  This
module provides:

* :class:`KronWorkload` — ``W = F_k (x) ... (x) F_1`` with the Gram matrix,
  Frobenius norm and mat-vec products computed factor-wise (never forming
  the full ``W`` unless it is small);
* general marginal workloads over arbitrary-arity attributes
  (:func:`product_marginals`, :func:`all_product_marginals`,
  :func:`k_way_product_marginals`), generalizing the binary
  :mod:`repro.workloads.marginals`.

Conventions: attribute 0 is the fastest-varying index of the flat domain
(matching :class:`repro.domains.ProductDomain`), so the flat matrix is
``kron(F_{k-1}, ..., F_0)``.
"""

from __future__ import annotations

from functools import reduce
from itertools import combinations

import numpy as np

from repro.domains import ProductDomain
from repro.exceptions import WorkloadError
from repro.workloads.base import MAX_EXPLICIT_ENTRIES, Workload


def _kron_all(factors: list[np.ndarray]) -> np.ndarray:
    """``kron(F_{k-1}, ..., F_0)`` for factors listed attribute-0 first."""
    return reduce(np.kron, reversed(factors))


def _apply_factors(factors: list[np.ndarray], x: np.ndarray) -> np.ndarray:
    """Apply ``kron(F_{k-1}, ..., F_0)`` to a flat vector factor-wise.

    Reshapes ``x`` into a tensor with attribute ``k-1`` as the leading axis
    (C order matches the mixed-radix convention) and contracts each factor
    along its own axis — far cheaper than forming the full product.
    """
    shape = [factor.shape[1] for factor in reversed(factors)]
    tensor = np.asarray(x, dtype=float).reshape(shape)
    for axis, factor in enumerate(reversed(factors)):
        moved = np.moveaxis(tensor, axis, 0)
        tail_shape = moved.shape[1:]
        applied = factor @ moved.reshape(factor.shape[1], -1)
        tensor = np.moveaxis(
            applied.reshape((factor.shape[0],) + tail_shape), 0, axis
        )
    return tensor.reshape(-1)


class KronWorkload(Workload):
    """A workload that factors over the attributes of a product domain.

    Parameters
    ----------
    factors:
        One query matrix per attribute, attribute 0 first; factor ``i`` has
        shape ``(p_i, d_i)``.

    Examples
    --------
    >>> import numpy as np
    >>> cdf_by_group = KronWorkload([np.tril(np.ones((3, 3))), np.eye(2)])
    >>> cdf_by_group.num_queries, cdf_by_group.domain_size
    (6, 6)
    """

    def __init__(self, factors: list[np.ndarray], name: str = "Kron") -> None:
        if not factors:
            raise WorkloadError("KronWorkload needs at least one factor")
        self.factors = [np.asarray(factor, dtype=float) for factor in factors]
        for factor in self.factors:
            if factor.ndim != 2:
                raise WorkloadError("Kron factors must be 2-D matrices")
        num_queries = 1
        domain_size = 1
        for factor in self.factors:
            num_queries *= factor.shape[0]
            domain_size *= factor.shape[1]
        super().__init__(domain_size, num_queries, name)

    @property
    def matrix(self) -> np.ndarray:
        if self.num_queries * self.domain_size > MAX_EXPLICIT_ENTRIES:
            raise WorkloadError(
                f"Kron workload with {self.num_queries}x{self.domain_size} "
                "entries exceeds the explicit limit; use gram()/matvec()"
            )
        return _kron_all(self.factors)

    def _compute_gram(self) -> np.ndarray:
        return _kron_all([factor.T @ factor for factor in self.factors])

    def frobenius_norm_squared(self) -> float:
        product = 1.0
        for factor in self.factors:
            product *= float(np.sum(factor**2))
        return product

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_domain_vector(x)
        return _apply_factors(self.factors, x)

    def rmatvec(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=float)
        if a.shape != (self.num_queries,):
            raise WorkloadError(
                f"expected {self.num_queries} query values, got shape {a.shape}"
            )
        return _apply_factors([factor.T for factor in self.factors], a)


class ProductMarginalsWorkload(Workload):
    """Marginals over arbitrary-arity attribute subsets.

    The marginal on subset ``S`` is the Kron workload with ``I_{d_i}`` for
    attributes in ``S`` and the total row ``1^T`` elsewhere; the workload
    stacks the marginals of every requested subset.
    """

    def __init__(
        self,
        domain: ProductDomain,
        subsets: list[tuple[int, ...]],
        name: str = "ProductMarginals",
    ) -> None:
        if not subsets:
            raise WorkloadError("needs at least one attribute subset")
        for subset in subsets:
            if any(not 0 <= a < domain.num_attributes for a in subset):
                raise WorkloadError(f"subset {subset} outside the attributes")
            if len(set(subset)) != len(subset):
                raise WorkloadError(f"subset {subset} repeats an attribute")
        self.product_domain = domain
        self.subsets = [tuple(sorted(subset)) for subset in subsets]
        self._blocks = [
            KronWorkload(self._factors(subset), name=f"marginal{subset}")
            for subset in self.subsets
        ]
        super().__init__(
            domain.size, sum(block.num_queries for block in self._blocks), name
        )

    def _factors(self, subset: tuple[int, ...]) -> list[np.ndarray]:
        keep = set(subset)
        return [
            np.eye(size) if index in keep else np.ones((1, size))
            for index, size in enumerate(self.product_domain.sizes)
        ]

    @property
    def matrix(self) -> np.ndarray:
        if self.num_queries * self.domain_size > MAX_EXPLICIT_ENTRIES:
            raise WorkloadError(
                "product marginals too large to materialize; use gram()/matvec()"
            )
        return np.vstack([block.matrix for block in self._blocks])

    def _compute_gram(self) -> np.ndarray:
        gram = np.zeros((self.domain_size, self.domain_size))
        for block in self._blocks:
            gram += block.gram()
        return gram

    def frobenius_norm_squared(self) -> float:
        return sum(block.frobenius_norm_squared() for block in self._blocks)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_domain_vector(x)
        return np.concatenate([block.matvec(x) for block in self._blocks])

    def rmatvec(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=float)
        if a.shape != (self.num_queries,):
            raise WorkloadError(
                f"expected {self.num_queries} query values, got shape {a.shape}"
            )
        result = np.zeros(self.domain_size)
        offset = 0
        for block in self._blocks:
            result += block.rmatvec(a[offset : offset + block.num_queries])
            offset += block.num_queries
        return result


def product_marginals(
    sizes: tuple[int, ...], subsets: list[tuple[int, ...]]
) -> ProductMarginalsWorkload:
    """Marginals on explicit attribute subsets of a product domain."""
    return ProductMarginalsWorkload(ProductDomain(tuple(sizes)), subsets)


def all_product_marginals(sizes: tuple[int, ...]) -> ProductMarginalsWorkload:
    """All ``2^k`` marginals (including the total) — ``prod(1 + d_i)`` queries."""
    domain = ProductDomain(tuple(sizes))
    attributes = range(domain.num_attributes)
    subsets: list[tuple[int, ...]] = []
    for size in range(domain.num_attributes + 1):
        subsets.extend(combinations(attributes, size))
    return ProductMarginalsWorkload(domain, subsets, name="AllProductMarginals")


def k_way_product_marginals(
    sizes: tuple[int, ...], way: int
) -> ProductMarginalsWorkload:
    """All marginals on exactly ``way`` attributes of a product domain."""
    domain = ProductDomain(tuple(sizes))
    if not 1 <= way <= domain.num_attributes:
        raise WorkloadError(
            f"way must be in [1, {domain.num_attributes}], got {way}"
        )
    subsets = list(combinations(range(domain.num_attributes), way))
    return ProductMarginalsWorkload(
        domain, subsets, name=f"{way}-Way ProductMarginals"
    )
