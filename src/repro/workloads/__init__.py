"""Workload library.

The six workloads evaluated in the paper (Section 6.1) plus custom /
random builders:

======================  ==============================================
``histogram(n)``        identity matrix, one point query per type
``prefix(n)``           empirical CDF queries (Example 2.4)
``all_range(n)``        every contiguous range query (implicit Gram)
``all_marginals(k)``    all 3^k marginal queries over {0,1}^k
``k_way_marginals(k)``  marginals on exactly 3 attributes (default)
``parity(k)``           parity queries of degree <= 3 (default)
======================  ==============================================

Every workload exposes ``matrix`` (when materializable), ``gram()``,
``frobenius_norm_squared()``, ``matvec``/``rmatvec`` and
``singular_values()``; the analysis and optimization layers are written
against this interface only.
"""

from repro.workloads.base import (
    ExplicitWorkload,
    MAX_EXPLICIT_ENTRIES,
    Workload,
    stack,
    weighted,
)
from repro.workloads.kron import (
    KronWorkload,
    ProductMarginalsWorkload,
    all_product_marginals,
    k_way_product_marginals,
    product_marginals,
)
from repro.workloads.library import HistogramWorkload, PrefixWorkload, histogram, prefix
from repro.workloads.marginals import (
    AllMarginalsWorkload,
    KWayMarginalsWorkload,
    MarginalsWorkload,
    all_marginals,
    k_way_marginals,
)
from repro.workloads.parity import ParityWorkload, parity
from repro.workloads.random import random_range_workload, random_workload
from repro.workloads.range_queries import AllRangeWorkload, all_range

#: Names of the six paper workloads, in the order of the paper's figures.
PAPER_WORKLOADS = (
    "Histogram",
    "Prefix",
    "AllRange",
    "AllMarginals",
    "3-Way Marginals",
    "Parity",
)


def by_name(name: str, domain_size: int) -> Workload:
    """Construct one of the paper's six workloads by display name.

    ``domain_size`` must be a power of two for the binary-domain workloads
    (marginals, parity); the number of attributes is derived from it.
    """
    from repro.exceptions import WorkloadError

    builders = {
        "Histogram": lambda: histogram(domain_size),
        "Prefix": lambda: prefix(domain_size),
        "AllRange": lambda: all_range(domain_size),
    }
    if name in builders:
        return builders[name]()
    if name in ("AllMarginals", "3-Way Marginals", "Parity"):
        num_attributes = domain_size.bit_length() - 1
        if 1 << num_attributes != domain_size:
            raise WorkloadError(
                f"{name} needs a power-of-two domain, got {domain_size}"
            )
        if name == "AllMarginals":
            return all_marginals(num_attributes)
        if name == "3-Way Marginals":
            return k_way_marginals(num_attributes, way=min(3, num_attributes))
        return parity(num_attributes, degree=min(3, num_attributes))
    raise WorkloadError(f"unknown workload {name!r}; known: {PAPER_WORKLOADS}")


__all__ = [
    "AllMarginalsWorkload",
    "AllRangeWorkload",
    "ExplicitWorkload",
    "HistogramWorkload",
    "KWayMarginalsWorkload",
    "KronWorkload",
    "MAX_EXPLICIT_ENTRIES",
    "MarginalsWorkload",
    "PAPER_WORKLOADS",
    "ParityWorkload",
    "PrefixWorkload",
    "ProductMarginalsWorkload",
    "Workload",
    "all_marginals",
    "all_product_marginals",
    "all_range",
    "by_name",
    "histogram",
    "k_way_marginals",
    "k_way_product_marginals",
    "parity",
    "prefix",
    "product_marginals",
    "random_range_workload",
    "random_workload",
    "stack",
    "weighted",
]
