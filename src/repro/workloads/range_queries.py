"""The AllRange workload: every contiguous range query over a 1-D domain.

AllRange has ``p = n(n+1)/2`` queries, which at the paper's n = 512 is
131,328 rows — too large to keep as a dense matrix alongside strategy
matrices.  The class below is *implicit*: the Gram matrix, Frobenius norm,
``matvec`` and ``rmatvec`` all have closed forms, and the explicit matrix is
only built on demand for small domains (tests, examples).

Closed-form Gram: range ``[i, j]`` (inclusive, 0-indexed) covers both ``a``
and ``b`` iff ``i <= min(a,b)`` and ``j >= max(a,b)``, so

    (W^T W)_{ab} = (min(a,b) + 1) * (n - max(a,b)).

Queries are enumerated in lexicographic order of ``(i, j)`` with
``0 <= i <= j < n``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WorkloadError
from repro.workloads.base import MAX_EXPLICIT_ENTRIES, Workload


class AllRangeWorkload(Workload):
    """All ``n(n+1)/2`` contiguous range queries over a domain of size n."""

    def __init__(self, domain_size: int) -> None:
        super().__init__(
            domain_size, domain_size * (domain_size + 1) // 2, name="AllRange"
        )

    @property
    def matrix(self) -> np.ndarray:
        n = self.domain_size
        if self.num_queries * n > MAX_EXPLICIT_ENTRIES:
            raise WorkloadError(
                f"AllRange at n={n} has {self.num_queries} queries; use the "
                "implicit gram()/matvec()/rmatvec() interface instead"
            )
        rows = np.zeros((self.num_queries, n))
        row = 0
        for start in range(n):
            for stop in range(start, n):
                rows[row, start : stop + 1] = 1.0
                row += 1
        return rows

    def _compute_gram(self) -> np.ndarray:
        n = self.domain_size
        idx = np.arange(n, dtype=float)
        lower = np.minimum(idx[:, None], idx[None, :]) + 1.0
        upper = n - np.maximum(idx[:, None], idx[None, :])
        return lower * upper

    def frobenius_norm_squared(self) -> float:
        n = self.domain_size
        idx = np.arange(n, dtype=float)
        return float(np.sum((idx + 1.0) * (n - idx)))

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """All range sums via prefix sums, ``O(p)`` time and memory."""
        x = self._check_domain_vector(x)
        n = self.domain_size
        prefix_sums = np.concatenate(([0.0], np.cumsum(x)))
        answers = np.empty(self.num_queries)
        row = 0
        for start in range(n):
            count = n - start
            answers[row : row + count] = prefix_sums[start + 1 :] - prefix_sums[start]
            row += count
        return answers

    def rmatvec(self, a: np.ndarray) -> np.ndarray:
        """``(W^T a)_u = sum of a over ranges containing u`` via 2-D cumsums."""
        a = np.asarray(a, dtype=float)
        if a.shape != (self.num_queries,):
            raise WorkloadError(
                f"expected {self.num_queries} query values, got shape {a.shape}"
            )
        n = self.domain_size
        table = np.zeros((n, n))
        row = 0
        for start in range(n):
            count = n - start
            table[start, start:] = a[row : row + count]
            row += count
        # suffix-sum along j so tail[i, u] = sum_{j >= u} a[i, j], then
        # prefix-sum along i; entry (u, u) is sum_{i <= u} sum_{j >= u} a[i, j].
        tail = np.cumsum(table[:, ::-1], axis=1)[:, ::-1]
        return np.cumsum(tail, axis=0).diagonal().copy()


def all_range(domain_size: int) -> Workload:
    """The AllRange workload over ``domain_size`` types."""
    return AllRangeWorkload(domain_size)
