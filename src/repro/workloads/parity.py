"""Parity workloads over binary product domains (studied in [19]).

A parity query for a non-empty subset ``S`` of attributes is the +-1-valued
character ``chi_S(u) = (-1)^{<S, u>}``; its answer is the number of users
with even parity on ``S`` minus the number with odd parity.  The workload
contains all parities of degree ``1..degree`` (``degree = 3`` by default,
matching the low-order parities of [19]).  With ``k`` attributes this gives
``p = C(k,1) + ... + C(k,degree)`` queries — far fewer than ``n = 2^k``, so
the workload is low-rank, which is exactly the property Section 6.5 of the
paper calls out for Parity.
"""

from __future__ import annotations

import numpy as np

from repro.domains import BinaryDomain
from repro.exceptions import WorkloadError
from repro.linalg.bits import popcount, subsets_of_size
from repro.workloads.base import Workload


class ParityWorkload(Workload):
    """All parity queries of degree ``1..degree`` over ``{0,1}^k``."""

    def __init__(
        self, num_attributes: int, degree: int = 3, include_total: bool = False
    ) -> None:
        if not 1 <= degree <= num_attributes:
            raise WorkloadError(
                f"degree must be in [1, {num_attributes}], got {degree}"
            )
        self.binary_domain = BinaryDomain(num_attributes)
        self.degree = degree
        self.subset_masks: list[int] = [0] if include_total else []
        for size in range(1, degree + 1):
            self.subset_masks.extend(subsets_of_size(num_attributes, size))
        super().__init__(
            self.binary_domain.size, len(self.subset_masks), name="Parity"
        )

    @property
    def matrix(self) -> np.ndarray:
        types = np.arange(self.domain_size)
        masks = np.asarray(self.subset_masks)
        parities = popcount(masks[:, None] & types[None, :]) & 1
        return np.where(parities == 1, -1.0, 1.0)


def parity(num_attributes: int, degree: int = 3) -> Workload:
    """The Parity workload of degree <= ``degree`` over ``{0,1}^k``."""
    return ParityWorkload(num_attributes, degree)
