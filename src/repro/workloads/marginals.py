"""Marginal workloads over binary product domains.

*AllMarginals* contains, for every subset ``S`` of the ``k`` attributes and
every setting of the attributes in ``S``, the query counting users matching
that setting — ``p = 3^k`` queries in total (studied in [13]).
*KWayMarginals* restricts to subsets of exactly ``way`` attributes
(``way = 3`` gives the paper's "3-Way Marginals").

Both have closed-form Gram matrices.  Two user types agree on a marginal
query's subset exactly when the subset avoids every differing attribute, so
with ``a = k - hamming(u, v)`` agreeing attributes:

* AllMarginals:  ``(W^T W)_{uv} = sum_S [u_S = v_S] = 2^a``
* KWayMarginals: ``(W^T W)_{uv} = C(a, way)``
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb

from repro.domains import BinaryDomain
from repro.exceptions import WorkloadError
from repro.linalg.bits import subsets_of_size
from repro.workloads.base import Workload


def _marginal_rows(domain: BinaryDomain, subset_mask: int) -> np.ndarray:
    """Query rows of the marginal on the attributes in ``subset_mask``.

    Returns a ``(2^|S|, n)`` 0/1 matrix whose row ``t`` indicates the user
    types whose attributes restricted to ``S`` equal setting ``t``.
    """
    types = np.arange(domain.size)
    positions = [j for j in range(domain.num_attributes) if subset_mask >> j & 1]
    group = np.zeros(domain.size, dtype=np.int64)
    for rank, position in enumerate(positions):
        group |= ((types >> position) & 1) << rank
    num_settings = 1 << len(positions)
    rows = np.zeros((num_settings, domain.size))
    rows[group, types] = 1.0
    return rows


class MarginalsWorkload(Workload):
    """Marginals over an explicit collection of attribute subsets."""

    def __init__(
        self, domain: BinaryDomain, subset_masks: list[int], name: str
    ) -> None:
        if not subset_masks:
            raise WorkloadError("marginals workload needs at least one subset")
        limit = 1 << domain.num_attributes
        if any(not 0 <= mask < limit for mask in subset_masks):
            raise WorkloadError("subset mask outside the attribute range")
        self.binary_domain = domain
        self.subset_masks = list(subset_masks)
        num_queries = sum(1 << bin(mask).count("1") for mask in subset_masks)
        super().__init__(domain.size, num_queries, name)

    @property
    def matrix(self) -> np.ndarray:
        blocks = [
            _marginal_rows(self.binary_domain, mask) for mask in self.subset_masks
        ]
        return np.vstack(blocks)


class AllMarginalsWorkload(MarginalsWorkload):
    """All ``3^k`` marginal queries over ``{0,1}^k`` (includes the total)."""

    def __init__(self, num_attributes: int) -> None:
        domain = BinaryDomain(num_attributes)
        masks = list(range(1 << num_attributes))
        super().__init__(domain, masks, name="AllMarginals")

    def _compute_gram(self) -> np.ndarray:
        agree = (
            self.binary_domain.num_attributes
            - self.binary_domain.hamming_distance_table()
        )
        return np.power(2.0, agree)


class KWayMarginalsWorkload(MarginalsWorkload):
    """All marginals on exactly ``way`` of the ``k`` binary attributes."""

    def __init__(self, num_attributes: int, way: int = 3) -> None:
        if not 1 <= way <= num_attributes:
            raise WorkloadError(
                f"way must be in [1, {num_attributes}], got {way}"
            )
        domain = BinaryDomain(num_attributes)
        masks = subsets_of_size(num_attributes, way)
        self.way = way
        super().__init__(domain, masks, name=f"{way}-Way Marginals")

    def _compute_gram(self) -> np.ndarray:
        agree = (
            self.binary_domain.num_attributes
            - self.binary_domain.hamming_distance_table()
        )
        return comb(agree, self.way).astype(float)


def all_marginals(num_attributes: int) -> Workload:
    """AllMarginals over ``{0,1}^num_attributes`` (n = 2^k, p = 3^k)."""
    return AllMarginalsWorkload(num_attributes)


def k_way_marginals(num_attributes: int, way: int = 3) -> Workload:
    """All ``way``-attribute marginals over ``{0,1}^num_attributes``."""
    return KWayMarginalsWorkload(num_attributes, way)
