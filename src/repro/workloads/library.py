"""The simple 1-D workloads from the paper: Histogram and Prefix.

Histogram is the ``n x n`` identity (Example 2.2 context); Prefix is the
lower-triangular all-ones matrix computing the unnormalized empirical CDF
(Example 2.4).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import ExplicitWorkload, Workload


class HistogramWorkload(ExplicitWorkload):
    """The identity workload ``W = I_n`` — one point query per user type."""

    def __init__(self, domain_size: int) -> None:
        super().__init__(np.eye(domain_size), name="Histogram")

    def _compute_gram(self) -> np.ndarray:
        return np.eye(self.domain_size)


class PrefixWorkload(ExplicitWorkload):
    """All prefix (CDF) queries: row ``i`` sums counts of types ``0..i``.

    The Gram matrix has the closed form ``(W^T W)_{ab} = n - max(a, b)``:
    prefix row ``i`` covers both ``a`` and ``b`` exactly when
    ``i >= max(a, b)``.
    """

    def __init__(self, domain_size: int) -> None:
        super().__init__(np.tril(np.ones((domain_size, domain_size))), name="Prefix")

    def _compute_gram(self) -> np.ndarray:
        n = self.domain_size
        idx = np.arange(n)
        return (n - np.maximum(idx[:, None], idx[None, :])).astype(float)


def histogram(domain_size: int) -> Workload:
    """The Histogram workload (identity matrix) over ``domain_size`` types."""
    return HistogramWorkload(domain_size)


def prefix(domain_size: int) -> Workload:
    """The Prefix (empirical CDF) workload over ``domain_size`` types."""
    return PrefixWorkload(domain_size)
