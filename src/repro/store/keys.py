"""Content-addressed keys for the strategy store.

Strategy optimization is a pure function of ``(Gram matrix, epsilon,
optimizer configuration)`` — Section 4's observation that strategy selection
touches only public inputs.  A stored strategy is therefore addressed by
exactly those inputs:

* :func:`gram_fingerprint` — SHA-256 of the workload's Gram matrix bytes.
  The optimizer only ever sees the workload through ``W^T W``, so two
  workloads with the same Gram are interchangeable and share entries, while
  two different workloads that merely share a name never collide.
* :func:`config_fingerprint` — SHA-256 of the canonicalized
  :class:`~repro.optimization.pgd.OptimizerConfig` (array-valued fields are
  hashed by content), plus any caller-supplied extras such as the restart
  count.
* :class:`StrategyKey` — the full addressing tuple and its derived
  ``entry_id`` (the on-disk file stem).

Keys are deliberately insensitive to *where* or *when* a strategy was built:
the same workload, budget and configuration produce the same ``entry_id`` on
any machine, which is what makes the store shareable between processes,
hosts, and CI runs.  One caveat: the multi-restart driver may improve a
build with a warm start seeded from a previously stored entry, so the
*payload* under a key can depend on what the store held at build time; such
entries carry a ``warm_start_won`` note in their provenance.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass

import numpy as np

from repro.exceptions import StoreError
from repro.workloads.base import Workload

#: Decimal places epsilon is rounded to before keying (matches the in-memory
#: mechanism caches, so a float that survives a round trip keys identically).
EPSILON_DECIMALS = 12


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def canonical_epsilon(epsilon: float) -> float:
    """Epsilon rounded to the store's keying precision.

    Examples
    --------
    >>> canonical_epsilon(1.0000000000000002)
    1.0
    """
    return round(float(epsilon), EPSILON_DECIMALS)


def gram_fingerprint(gram: np.ndarray | Workload) -> str:
    """SHA-256 hex digest of a Gram matrix (or a workload's Gram).

    Examples
    --------
    >>> from repro.workloads import prefix
    >>> gram_fingerprint(prefix(8)) == gram_fingerprint(prefix(8).gram())
    True
    >>> gram_fingerprint(prefix(8)) == gram_fingerprint(prefix(16))
    False
    """
    if isinstance(gram, Workload):
        gram = gram.gram()
    gram = np.ascontiguousarray(np.asarray(gram, dtype=float))
    if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
        raise StoreError(f"Gram matrix must be square, got shape {gram.shape}")
    return _sha256(gram.tobytes())


def _canonical_value(value):
    """JSON-serializable canonical form of one config field value."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips float64 exactly and is stable across platforms.
        return repr(value)
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value, dtype=float)
        return {"ndarray": _sha256(array.tobytes()), "shape": list(array.shape)}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    if is_dataclass(value) and not isinstance(value, type):
        # Nested configs (e.g. FactoredOptimizerConfig.base) canonicalize
        # field-wise, tagged with the class name so two config types whose
        # fields happen to coincide never share a fingerprint.
        return {
            "dataclass": type(value).__name__,
            "fields": {
                field.name: _canonical_value(getattr(value, field.name))
                for field in fields(value)
            },
        }
    raise StoreError(
        f"cannot canonicalize config value of type {type(value).__name__}"
    )


def config_fingerprint(config, **extras) -> str:
    """SHA-256 hex digest of an optimizer configuration.

    Every dataclass field participates (array-valued fields such as
    ``initial_strategy`` and ``prior`` are hashed by content), so two configs
    that could produce different strategies never share a fingerprint.
    ``extras`` lets callers fold in knobs that live outside the config — the
    restart count, the mechanism's baseline-flooring flag — without changing
    the config class.

    Examples
    --------
    >>> from repro.optimization import OptimizerConfig
    >>> a = config_fingerprint(OptimizerConfig(num_iterations=100, seed=0))
    >>> b = config_fingerprint(OptimizerConfig(num_iterations=200, seed=0))
    >>> a == b
    False
    >>> a == config_fingerprint(OptimizerConfig(num_iterations=100, seed=0))
    True
    >>> a == config_fingerprint(
    ...     OptimizerConfig(num_iterations=100, seed=0), restarts=4
    ... )
    False
    """
    payload = {
        field.name: _canonical_value(getattr(config, field.name))
        for field in fields(config)
    }
    for name in sorted(extras):
        payload[f"extra:{name}"] = _canonical_value(extras[name])
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return _sha256(encoded.encode("utf-8"))


@dataclass(frozen=True)
class StrategyKey:
    """The full address of one stored strategy.

    Attributes
    ----------
    gram_hash:
        :func:`gram_fingerprint` of the workload's Gram matrix.
    domain_size:
        Domain size ``n`` (redundant with the Gram, kept explicit so the
        index is inspectable without loading payloads).
    epsilon:
        Privacy budget, rounded to :data:`EPSILON_DECIMALS` places.
    config_hash:
        :func:`config_fingerprint` of the optimizer configuration.
    """

    gram_hash: str
    domain_size: int
    epsilon: float
    config_hash: str

    def __post_init__(self) -> None:
        if self.domain_size < 1:
            raise StoreError(f"domain size must be >= 1, got {self.domain_size}")
        if self.epsilon <= 0:
            raise StoreError(f"epsilon must be positive, got {self.epsilon}")
        object.__setattr__(self, "epsilon", canonical_epsilon(self.epsilon))

    @property
    def entry_id(self) -> str:
        """Stable content address (the on-disk file stem).

        Examples
        --------
        >>> key = StrategyKey("a" * 64, 8, 1.0, "b" * 64)
        >>> key.entry_id == StrategyKey("a" * 64, 8, 1.0, "b" * 64).entry_id
        True
        >>> len(key.entry_id)
        32
        """
        text = (
            f"{self.gram_hash}|{self.domain_size}|"
            f"{self.epsilon!r}|{self.config_hash}"
        )
        return _sha256(text.encode("utf-8"))[:32]


def key_for(
    workload: Workload | np.ndarray, epsilon: float, config, **extras
) -> StrategyKey:
    """Build the :class:`StrategyKey` for one optimization problem.

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.base.Workload` or raw Gram matrix.
    epsilon:
        Privacy budget.
    config:
        The :class:`~repro.optimization.pgd.OptimizerConfig` to fingerprint.
    extras:
        Additional key material (e.g. ``restarts=4``).

    Examples
    --------
    >>> from repro.optimization import OptimizerConfig
    >>> from repro.workloads import prefix
    >>> config = OptimizerConfig(num_iterations=100, seed=0)
    >>> key = key_for(prefix(8), 1.0, config)
    >>> key.domain_size, key.epsilon
    (8, 1.0)
    >>> key == key_for(prefix(8).gram(), 1.0, config)
    True
    """
    if isinstance(workload, Workload):
        gram = workload.gram()
    else:
        gram = np.asarray(workload, dtype=float)
    return StrategyKey(
        gram_hash=gram_fingerprint(gram),
        domain_size=gram.shape[0],
        epsilon=canonical_epsilon(epsilon),
        config_hash=config_fingerprint(config, **extras),
    )


def factored_fingerprint(workload) -> str:
    """Structural SHA-256 of a factored workload — no flat Gram involved.

    The dense :func:`gram_fingerprint` hashes the raw ``n x n`` Gram bytes,
    which does not exist for product domains with millions of cells.  This
    fingerprint instead hashes the workload's *factored structure*: for a
    :class:`~repro.workloads.kron.KronWorkload`, the per-factor Gram hashes
    (which determine the flat Gram exactly); for a
    :class:`~repro.workloads.kron.ProductMarginalsWorkload`, the attribute
    sizes and subsets (which determine every block).  The hashed payload is
    a tagged JSON document, never raw matrix bytes, so a factored
    fingerprint cannot collide with any dense Gram fingerprint — and store
    records additionally carry an explicit ``kind`` column.

    Examples
    --------
    >>> from repro.workloads import k_way_product_marginals
    >>> a = factored_fingerprint(k_way_product_marginals((3, 4, 2), 2))
    >>> a == factored_fingerprint(k_way_product_marginals((3, 4, 2), 2))
    True
    >>> a == factored_fingerprint(k_way_product_marginals((3, 4, 2), 1))
    False
    """
    from repro.workloads.kron import KronWorkload, ProductMarginalsWorkload

    if isinstance(workload, ProductMarginalsWorkload):
        payload = {
            "kind": "product-marginals",
            "sizes": list(workload.product_domain.sizes),
            "subsets": [list(subset) for subset in workload.subsets],
        }
    elif isinstance(workload, KronWorkload):
        payload = {
            "kind": "kron",
            "factor_grams": [
                _sha256(np.ascontiguousarray(gram, dtype=float).tobytes())
                for gram in workload.factor_grams()
            ],
        }
    else:
        raise StoreError(
            "factored fingerprints need a KronWorkload or "
            f"ProductMarginalsWorkload, got {type(workload).__name__}"
        )
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return _sha256(b"factored:" + encoded.encode("utf-8"))


def key_for_factored(workload, epsilon: float, config, **extras) -> StrategyKey:
    """The :class:`StrategyKey` of one *factored* optimization problem.

    Addressed by the structural :func:`factored_fingerprint` plus the
    canonicalized :class:`~repro.optimization.factored.FactoredOptimizerConfig`
    (nested dataclasses hash field-wise), with ``factored=True`` folded into
    the config hash so a factored build can never answer a dense lookup or
    vice versa.

    Examples
    --------
    >>> from repro.optimization import (
    ...     FactoredOptimizerConfig, OptimizerConfig
    ... )
    >>> from repro.workloads import k_way_product_marginals
    >>> workload = k_way_product_marginals((3, 4, 2), 2)
    >>> config = FactoredOptimizerConfig(
    ...     base=OptimizerConfig(num_iterations=50, seed=0)
    ... )
    >>> key = key_for_factored(workload, 1.0, config)
    >>> key.domain_size
    24
    >>> key == key_for_factored(workload, 1.0, config)
    True
    """
    return StrategyKey(
        gram_hash=factored_fingerprint(workload),
        domain_size=workload.domain_size,
        epsilon=canonical_epsilon(epsilon),
        config_hash=config_fingerprint(config, factored=True, **extras),
    )
