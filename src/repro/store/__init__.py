"""Persistent, content-addressed storage for optimized strategies.

Strategy optimization is a public, privacy-free precomputation (Section 4):
its output depends only on the workload's Gram matrix, the privacy budget,
and the optimizer configuration.  This package treats optimized strategies
as reusable artifacts keyed by exactly those inputs:

* :mod:`repro.store.keys` — content-addressed keys
  (:class:`~repro.store.keys.StrategyKey`, Gram/config fingerprints).
* :mod:`repro.store.store` — the disk-backed
  :class:`~repro.store.store.StrategyStore` (atomic writes, integrity
  checks, LRU pruning) and its JSON index.

See ``docs/strategy-store.md`` for the key scheme, invalidation rules, and
CLI examples.
"""

from repro.store.keys import (
    EPSILON_DECIMALS,
    StrategyKey,
    canonical_epsilon,
    config_fingerprint,
    factored_fingerprint,
    gram_fingerprint,
    key_for,
    key_for_factored,
)
from repro.store.store import (
    STORE_ENV_VAR,
    STORE_VERSION,
    StoreRecord,
    StrategyStore,
    default_store_path,
)

__all__ = [
    "EPSILON_DECIMALS",
    "STORE_ENV_VAR",
    "STORE_VERSION",
    "StoreRecord",
    "StrategyKey",
    "StrategyStore",
    "canonical_epsilon",
    "config_fingerprint",
    "default_store_path",
    "factored_fingerprint",
    "gram_fingerprint",
    "key_for",
    "key_for_factored",
]
