"""Disk-backed, content-addressed store for optimized strategies.

The paper's Section 4 makes strategy optimization a *public* precomputation:
it consumes no privacy budget and depends only on the workload's Gram
matrix, the budget, and the optimizer configuration.  That makes optimized
strategies reusable artifacts — the expensive PGD run happens once, and
every later process (experiment sweeps, collection campaigns, CI) reloads
the result instead of re-optimizing.

Layout under the store root::

    root/
      index.json              one JSON record per entry (provenance + LRU)
      entries/<entry_id>.npz  strategy + trajectory, content-addressed

Guarantees:

* **Atomic writes** — payloads and the index are written to a temp file and
  ``os.replace``-d into place, so readers never observe a half-written
  entry, even if the writer dies mid-``put``.
* **Integrity** — every payload's SHA-256 is recorded in the index and
  re-checked on load; the strategy matrix is re-validated (column
  stochasticity + the epsilon-LDP ratio) when reconstructed, so a corrupted
  or tampered file can neither crash the caller nor smuggle in a privacy
  violation.  Corrupt entries are evicted on discovery and reported as
  misses.
* **LRU pruning** — :meth:`StrategyStore.prune` evicts least-recently-used
  entries to a count or byte budget.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import MISSING, asdict, dataclass, fields
from pathlib import Path

import numpy as np

from repro.exceptions import StoreError
from repro.mechanisms.base import StrategyMatrix
from repro.optimization.pgd import OptimizationResult, OptimizerConfig
from repro.store.keys import (
    StrategyKey,
    _canonical_value,
    canonical_epsilon,
    gram_fingerprint,
)
from repro.workloads.base import Workload

#: On-disk format version; bumped on incompatible payload changes.
STORE_VERSION = 1

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_STORE_DIR"


def default_store_path() -> Path:
    """The default store root: ``$REPRO_STORE_DIR`` or a per-user cache dir.

    Examples
    --------
    >>> import os
    >>> saved = os.environ.pop(STORE_ENV_VAR, None)
    >>> os.environ[STORE_ENV_VAR] = "/tmp/my-strategies"
    >>> str(default_store_path())
    '/tmp/my-strategies'
    >>> del os.environ[STORE_ENV_VAR]
    >>> if saved is not None:
    ...     os.environ[STORE_ENV_VAR] = saved
    """
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "strategies"


def _library_version() -> str:
    from repro._version import __version__

    return __version__


def _sha256_bytes(payload: bytes) -> str:
    import hashlib

    return hashlib.sha256(payload).hexdigest()


def _sha256_file(path: Path) -> str:
    import hashlib

    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclass(frozen=True)
class StoreRecord:
    """One index row: everything known about a stored strategy except the
    matrix itself (kept small so listing never loads payloads)."""

    entry_id: str
    gram_hash: str
    domain_size: int
    epsilon: float
    config_hash: str
    workload: str | None
    num_outputs: int
    objective: float
    iterations_run: int
    step_size: float
    payload_sha256: str
    size_bytes: int
    created_at: float
    last_used_at: float
    library_version: str
    #: ``"dense"`` for ordinary strategy matrices, ``"factored"`` for
    #: Kronecker-factorized builds; defaulted so indexes written before the
    #: column existed still parse.
    kind: str = "dense"

    @property
    def key(self) -> StrategyKey:
        """The addressing key this record answers to."""
        return StrategyKey(
            self.gram_hash, self.domain_size, self.epsilon, self.config_hash
        )


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically and durably (temp file +
    fsync + rename + parent-directory fsync).

    The final directory fsync matters: ``os.replace`` only updates the
    directory entry, and that metadata lives in the *directory*, not the
    file — without it a power failure can durably keep the payload bytes
    yet forget the rename, resurrecting the old file (or none at all).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
        directory = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(directory)
        finally:
            os.close(directory)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class StrategyStore:
    """Persistent map from :class:`~repro.store.keys.StrategyKey` to
    :class:`~repro.optimization.pgd.OptimizationResult`.

    Parameters
    ----------
    root:
        Directory holding the index and payloads; created on first write.

    Examples
    --------
    >>> import tempfile
    >>> from repro.optimization import OptimizerConfig, optimize_strategy
    >>> from repro.store import key_for
    >>> from repro.workloads import histogram
    >>> workload = histogram(4)
    >>> config = OptimizerConfig(num_iterations=30, seed=0)
    >>> result = optimize_strategy(workload, 1.0, config)
    >>> root = tempfile.mkdtemp()
    >>> store = StrategyStore(root)
    >>> key = key_for(workload, 1.0, config)
    >>> record = store.put(key, result, workload=workload.name)
    >>> reloaded = store.get(key)
    >>> bool((reloaded.strategy.probabilities
    ...       == result.strategy.probabilities).all())
    True
    >>> store.get(key_for(workload, 2.0, config)) is None
    True
    """

    def __init__(self, root: os.PathLike | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_path()

    # -- paths & index -----------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def entries_dir(self) -> Path:
        return self.root / "entries"

    def entry_path(self, entry_id: str) -> Path:
        return self.entries_dir / f"{entry_id}.npz"

    @contextmanager
    def _index_lock(self):
        """Best-effort inter-process lock around index read-modify-writes.

        Uses an ``flock`` on a sidecar lock file so concurrent ``put``/LRU
        updates from different processes sharing one store cannot lose each
        other's index rows.  Degrades to lock-free on filesystems or
        platforms where the lock cannot be taken (e.g. a read-only mount) —
        atomic index replacement still keeps readers consistent.
        """
        handle = None
        try:
            import fcntl

            self.root.mkdir(parents=True, exist_ok=True)
            handle = open(self.root / "index.lock", "a+b")
            fcntl.flock(handle, fcntl.LOCK_EX)
        except (ImportError, OSError):
            if handle is not None:
                handle.close()
                handle = None
        try:
            yield
        finally:
            if handle is not None:
                try:
                    import fcntl

                    fcntl.flock(handle, fcntl.LOCK_UN)
                except (ImportError, OSError):
                    pass
                handle.close()

    def _read_index(self) -> dict[str, dict]:
        if not self.index_path.exists():
            return {}
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(f"unreadable store index {self.index_path}: {error}")
        if document.get("store_version") != STORE_VERSION:
            raise StoreError(
                f"store index version {document.get('store_version')!r} != "
                f"supported version {STORE_VERSION}"
            )
        return document.get("entries", {})

    def _write_index(self, entries: dict[str, dict]) -> None:
        document = {"store_version": STORE_VERSION, "entries": entries}
        _atomic_write_bytes(
            self.index_path,
            json.dumps(document, indent=2, sort_keys=True).encode("utf-8"),
        )

    @staticmethod
    def _record_from_row(row: dict) -> StoreRecord:
        values = {}
        for field in fields(StoreRecord):
            if field.name in row:
                values[field.name] = row[field.name]
            elif field.default is not MISSING:
                values[field.name] = field.default
            else:
                raise StoreError(f"index row missing field {field.name!r}")
        return StoreRecord(**values)

    # -- write path --------------------------------------------------------

    def put(
        self,
        key: StrategyKey,
        result: OptimizationResult,
        workload: str | Workload | None = None,
        config: OptimizerConfig | None = None,
        notes: dict | None = None,
    ) -> StoreRecord:
        """Persist an optimization result under ``key`` (overwrites).

        The payload carries full provenance: the strategy and its corridor
        bounds, the objective trajectory, the Gram hash, the canonicalized
        config, the library version that produced it, and any caller
        ``notes`` (e.g. whether a warm start from another entry produced
        the winner — important because a warm-started winner depends on
        what the store held at build time, not on the key alone).
        """
        if canonical_epsilon(result.strategy.epsilon) != key.epsilon:
            raise StoreError(
                f"result epsilon {result.strategy.epsilon!r} does not match "
                f"key epsilon {key.epsilon!r}"
            )
        if result.strategy.domain_size != key.domain_size:
            raise StoreError(
                f"result domain {result.strategy.domain_size} does not match "
                f"key domain {key.domain_size}"
            )
        if isinstance(workload, Workload):
            workload = workload.name
        config_provenance = None
        if config is not None:
            config_provenance = {
                field.name: _canonical_value(getattr(config, field.name))
                for field in fields(config)
            }
        import io

        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            store_version=np.asarray(STORE_VERSION),
            probabilities=result.strategy.probabilities,
            bounds=np.asarray(result.bounds, dtype=float),
            history=np.asarray(result.history, dtype=float),
            objective=np.asarray(result.objective),
            step_size=np.asarray(result.step_size),
            iterations_run=np.asarray(result.iterations_run),
            epsilon=np.asarray(key.epsilon),
            gram_hash=np.asarray(key.gram_hash),
            config_hash=np.asarray(key.config_hash),
            strategy_name=np.asarray(result.strategy.name),
            config_json=np.asarray(
                json.dumps(config_provenance, sort_keys=True)
            ),
            notes_json=np.asarray(json.dumps(notes or {}, sort_keys=True)),
            library_version=np.asarray(_library_version()),
        )
        payload = buffer.getvalue()
        path = self.entry_path(key.entry_id)
        _atomic_write_bytes(path, payload)

        now = time.time()
        record = StoreRecord(
            entry_id=key.entry_id,
            gram_hash=key.gram_hash,
            domain_size=key.domain_size,
            epsilon=key.epsilon,
            config_hash=key.config_hash,
            workload=workload,
            num_outputs=result.strategy.num_outputs,
            objective=float(result.objective),
            iterations_run=int(result.iterations_run),
            step_size=float(result.step_size),
            payload_sha256=_sha256_bytes(payload),
            size_bytes=len(payload),
            created_at=now,
            last_used_at=now,
            library_version=_library_version(),
        )
        with self._index_lock():
            entries = self._read_index()
            entries[key.entry_id] = asdict(record)
            self._write_index(entries)
        return record

    # -- read path ---------------------------------------------------------

    def get(self, key: StrategyKey) -> OptimizationResult | None:
        """Look up a result by exact key; ``None`` on miss.

        A corrupt entry (truncated payload, checksum mismatch, invalid
        strategy) is evicted and reported as a miss rather than raised, so a
        damaged cache degrades to recomputation instead of failure.  The
        LRU timestamp update is best-effort: reading from a store on a
        read-only filesystem still works, it just loses recency tracking.
        """
        row = self._read_index().get(key.entry_id)
        if row is None:
            return None
        if row.get("kind", "dense") != "dense":
            # A factored build can share an id only through a hash-level
            # accident; never decode it on the dense path (and never evict a
            # healthy entry over a type mismatch).
            return None
        try:
            result = self._load_validated(self._record_from_row(row))
        except StoreError:
            self.discard(key.entry_id)
            return None
        try:
            with self._index_lock():
                entries = self._read_index()
                touched = entries.get(key.entry_id)
                if touched is not None:
                    touched["last_used_at"] = time.time()
                    self._write_index(entries)
        except (OSError, StoreError):
            pass
        return result

    def load(self, entry_id: str) -> OptimizationResult:
        """Load one entry by id, verifying integrity; raises on any damage.

        Raises
        ------
        StoreError
            If the entry is missing, its checksum does not match the index,
            or the payload fails validation (including the strategy's
            epsilon-LDP re-check).
        """
        return self._load_validated(self.record(entry_id))

    def _load_validated(self, record: StoreRecord) -> OptimizationResult:
        entry_id = record.entry_id
        if record.kind != "dense":
            raise StoreError(
                f"store entry {entry_id!r} holds a {record.kind} strategy; "
                "use load_factored()/get_factored() for factored entries"
            )
        path = self.entry_path(entry_id)
        if not path.exists():
            raise StoreError(f"store entry {entry_id!r} payload is missing")
        if _sha256_file(path) != record.payload_sha256:
            raise StoreError(
                f"store entry {entry_id!r} failed its checksum "
                "(truncated or tampered payload)"
            )
        try:
            with np.load(path, allow_pickle=False) as archive:
                if int(archive["store_version"]) != STORE_VERSION:
                    raise StoreError(
                        f"entry {entry_id!r} has store version "
                        f"{int(archive['store_version'])}, expected {STORE_VERSION}"
                    )
                strategy = StrategyMatrix(
                    archive["probabilities"],
                    float(archive["epsilon"]),
                    name=str(archive["strategy_name"]),
                )
                result = OptimizationResult(
                    strategy=strategy,
                    bounds=np.asarray(archive["bounds"], dtype=float),
                    objective=float(archive["objective"]),
                    step_size=float(archive["step_size"]),
                    iterations_run=int(archive["iterations_run"]),
                    history=list(np.asarray(archive["history"], dtype=float)),
                )
        except StoreError:
            raise
        except Exception as error:  # zip damage, missing fields, bad matrix
            raise StoreError(f"store entry {entry_id!r} is corrupt: {error}")
        return result

    # -- factored write/read paths ------------------------------------------

    def put_factored(
        self,
        key: StrategyKey,
        result,
        workload: str | Workload | None = None,
        config=None,
        notes: dict | None = None,
    ) -> StoreRecord:
        """Persist a factored optimization result under ``key`` (overwrites).

        The payload stores only the per-factor matrices — ``O(sum_i m_i
        d_i)`` bytes however large the flat domain — plus the joint
        objective, the budget split, and the same provenance block as
        :meth:`put`.  The index row carries ``kind="factored"`` so dense
        lookups can never decode it.
        """
        strategy = result.strategy
        if canonical_epsilon(strategy.epsilon) != key.epsilon:
            raise StoreError(
                f"result epsilon {strategy.epsilon!r} does not match "
                f"key epsilon {key.epsilon!r}"
            )
        if strategy.domain_size != key.domain_size:
            raise StoreError(
                f"result domain {strategy.domain_size} does not match "
                f"key domain {key.domain_size}"
            )
        if isinstance(workload, Workload):
            workload = workload.name
        config_provenance = None
        if config is not None:
            config_provenance = {
                field.name: _canonical_value(getattr(config, field.name))
                for field in fields(config)
            }
        import io

        arrays = {
            "store_version": np.asarray(STORE_VERSION),
            "kind": np.asarray("factored"),
            "num_factors": np.asarray(strategy.num_attributes, dtype=np.int64),
            "objective": np.asarray(result.objective),
            "factor_objectives": np.asarray(result.factor_objectives, dtype=float),
            "epsilon_split": np.asarray(result.epsilon_split, dtype=float),
            "rounds_run": np.asarray(result.rounds_run, dtype=np.int64),
            "iterations_run": np.asarray(result.iterations_run, dtype=np.int64),
            "epsilon": np.asarray(key.epsilon),
            "gram_hash": np.asarray(key.gram_hash),
            "config_hash": np.asarray(key.config_hash),
            "strategy_name": np.asarray(strategy.name),
            "config_json": np.asarray(json.dumps(config_provenance, sort_keys=True)),
            "notes_json": np.asarray(json.dumps(notes or {}, sort_keys=True)),
            "library_version": np.asarray(_library_version()),
        }
        for index, factor in enumerate(strategy.factors):
            arrays[f"factor_{index}_probabilities"] = factor.probabilities
            arrays[f"factor_{index}_epsilon"] = np.asarray(factor.epsilon)
            arrays[f"factor_{index}_name"] = np.asarray(factor.name)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        payload = buffer.getvalue()
        path = self.entry_path(key.entry_id)
        _atomic_write_bytes(path, payload)

        now = time.time()
        record = StoreRecord(
            entry_id=key.entry_id,
            gram_hash=key.gram_hash,
            domain_size=key.domain_size,
            epsilon=key.epsilon,
            config_hash=key.config_hash,
            workload=workload,
            num_outputs=strategy.num_outputs,
            objective=float(result.objective),
            iterations_run=int(result.iterations_run),
            step_size=0.0,
            payload_sha256=_sha256_bytes(payload),
            size_bytes=len(payload),
            created_at=now,
            last_used_at=now,
            library_version=_library_version(),
            kind="factored",
        )
        with self._index_lock():
            entries = self._read_index()
            entries[key.entry_id] = asdict(record)
            self._write_index(entries)
        return record

    def get_factored(self, key: StrategyKey):
        """Look up a factored result by exact key; ``None`` on miss.

        Same degradation contract as :meth:`get`: corrupt entries are
        evicted and reported as misses, dense entries under the id are
        misses (never evicted), LRU touch is best-effort.
        """
        row = self._read_index().get(key.entry_id)
        if row is None or row.get("kind", "dense") != "factored":
            return None
        try:
            result = self._load_factored_validated(self._record_from_row(row))
        except StoreError:
            self.discard(key.entry_id)
            return None
        try:
            with self._index_lock():
                entries = self._read_index()
                touched = entries.get(key.entry_id)
                if touched is not None:
                    touched["last_used_at"] = time.time()
                    self._write_index(entries)
        except (OSError, StoreError):
            pass
        return result

    def load_factored(self, entry_id: str):
        """Load one factored entry by id, verifying integrity; raises on
        damage or when the entry holds a dense strategy."""
        record = self.record(entry_id)
        if record.kind != "factored":
            raise StoreError(
                f"store entry {entry_id!r} holds a {record.kind} strategy; "
                "use load() for dense entries"
            )
        return self._load_factored_validated(record)

    def _load_factored_validated(self, record: StoreRecord):
        from repro.mechanisms.factored import FactoredStrategy
        from repro.optimization.factored import FactoredOptimizationResult

        entry_id = record.entry_id
        path = self.entry_path(entry_id)
        if not path.exists():
            raise StoreError(f"store entry {entry_id!r} payload is missing")
        if _sha256_file(path) != record.payload_sha256:
            raise StoreError(
                f"store entry {entry_id!r} failed its checksum "
                "(truncated or tampered payload)"
            )
        try:
            with np.load(path, allow_pickle=False) as archive:
                if int(archive["store_version"]) != STORE_VERSION:
                    raise StoreError(
                        f"entry {entry_id!r} has store version "
                        f"{int(archive['store_version'])}, expected {STORE_VERSION}"
                    )
                if str(archive["kind"]) != "factored":
                    raise StoreError(
                        f"entry {entry_id!r} payload kind "
                        f"{str(archive['kind'])!r} != 'factored'"
                    )
                factors = tuple(
                    StrategyMatrix(
                        archive[f"factor_{index}_probabilities"],
                        float(archive[f"factor_{index}_epsilon"]),
                        name=str(archive[f"factor_{index}_name"]),
                    )
                    for index in range(int(archive["num_factors"]))
                )
                strategy = FactoredStrategy(
                    factors, name=str(archive["strategy_name"])
                )
                result = FactoredOptimizationResult(
                    strategy=strategy,
                    objective=float(archive["objective"]),
                    factor_objectives=[
                        float(value) for value in archive["factor_objectives"]
                    ],
                    epsilon_split=tuple(
                        float(value) for value in archive["epsilon_split"]
                    ),
                    rounds_run=int(archive["rounds_run"]),
                    iterations_run=int(archive["iterations_run"]),
                )
        except StoreError:
            raise
        except Exception as error:  # zip damage, missing fields, bad matrix
            raise StoreError(f"store entry {entry_id!r} is corrupt: {error}")
        return result

    def provenance(self, entry_id: str) -> dict:
        """The provenance block of one entry (config, versions, hashes)."""
        record = self.record(entry_id)
        path = self.entry_path(entry_id)
        try:
            with np.load(path, allow_pickle=False) as archive:
                config_json = str(archive["config_json"])
                notes_json = (
                    str(archive["notes_json"])
                    if "notes_json" in archive.files
                    else "{}"
                )
                library_version = str(archive["library_version"])
                history = (
                    np.asarray(archive["history"], dtype=float)
                    if "history" in archive.files
                    else np.zeros(0)
                )
        except Exception as error:
            raise StoreError(f"store entry {entry_id!r} is corrupt: {error}")
        return {
            "record": asdict(record),
            "config": json.loads(config_json),
            "notes": json.loads(notes_json),
            "library_version": library_version,
            "objective_trajectory_length": int(history.shape[0]),
            "objective_trajectory_head": [float(v) for v in history[:3]],
            "objective_trajectory_tail": [float(v) for v in history[-3:]],
        }

    def record(self, entry_id: str) -> StoreRecord:
        """The index record for one entry id."""
        row = self._read_index().get(entry_id)
        if row is None:
            raise StoreError(f"no store entry {entry_id!r}")
        return self._record_from_row(row)

    def records(self) -> list[StoreRecord]:
        """All index records, newest first."""
        rows = [self._record_from_row(row) for row in self._read_index().values()]
        return sorted(rows, key=lambda record: record.created_at, reverse=True)

    def __len__(self) -> int:
        return len(self._read_index())

    def __contains__(self, key: StrategyKey) -> bool:
        return key.entry_id in self._read_index()

    # -- secondary lookups -------------------------------------------------

    def best_for(
        self, gram: np.ndarray | Workload, epsilon: float
    ) -> StoreRecord | None:
        """The lowest-objective entry for a workload/budget, any config.

        This is the deployment-side query: "give me the best strategy anyone
        has built for this workload at this epsilon".
        """
        target_hash = gram_fingerprint(gram)
        target_epsilon = canonical_epsilon(epsilon)
        matches = [
            record
            for record in self.records()
            if record.gram_hash == target_hash
            and record.epsilon == target_epsilon
            and record.kind == "dense"
        ]
        if not matches:
            return None
        return min(matches, key=lambda record: record.objective)

    def best_factored_for(self, workload, epsilon: float) -> StoreRecord | None:
        """The lowest-objective *factored* entry for a factored workload and
        budget, any configuration (the deployment-side factored query)."""
        from repro.store.keys import factored_fingerprint

        target_hash = factored_fingerprint(workload)
        target_epsilon = canonical_epsilon(epsilon)
        matches = [
            record
            for record in self.records()
            if record.gram_hash == target_hash
            and record.epsilon == target_epsilon
            and record.kind == "factored"
        ]
        if not matches:
            return None
        return min(matches, key=lambda record: record.objective)

    def nearest(
        self,
        gram: np.ndarray | Workload,
        epsilon: float,
        max_log_ratio: float = float("inf"),
    ) -> StoreRecord | None:
        """The entry for the same workload whose epsilon is closest on a log
        scale — the warm-start candidate for a new budget.

        ``max_log_ratio`` bounds ``|log(stored_eps / target_eps)|``; beyond
        it a warm start is unlikely to beat a random init and ``None`` is
        returned.
        """
        target_hash = gram_fingerprint(gram)
        target_epsilon = canonical_epsilon(epsilon)
        best: StoreRecord | None = None
        best_distance = max_log_ratio
        for record in self.records():
            if record.gram_hash != target_hash or record.kind != "dense":
                continue
            distance = abs(float(np.log(record.epsilon / target_epsilon)))
            if distance <= best_distance:
                if (
                    best is None
                    or distance < best_distance
                    or record.objective < best.objective
                ):
                    best, best_distance = record, distance
        return best

    # -- eviction ----------------------------------------------------------

    def discard(self, entry_id: str) -> bool:
        """Remove one entry (payload + index row); True if it existed.

        Best-effort on read-only filesystems: a store that cannot be
        written is left unchanged and the entry is reported as absent.
        """
        try:
            self.entry_path(entry_id).unlink()
        except OSError:
            pass
        try:
            with self._index_lock():
                entries = self._read_index()
                existed = entries.pop(entry_id, None) is not None
                if existed:
                    self._write_index(entries)
        except (OSError, StoreError):
            return False
        return existed

    def prune(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> list[StoreRecord]:
        """Evict least-recently-used entries down to the given budgets.

        Returns the evicted records (possibly empty).  With neither budget
        set this is a no-op.
        """
        if max_entries is not None and max_entries < 0:
            raise StoreError(f"max_entries must be >= 0, got {max_entries}")
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        records = sorted(self.records(), key=lambda record: record.last_used_at)
        keep = list(records)
        evicted: list[StoreRecord] = []
        while keep:
            over_count = max_entries is not None and len(keep) > max_entries
            over_bytes = (
                max_bytes is not None
                and sum(record.size_bytes for record in keep) > max_bytes
            )
            if not (over_count or over_bytes):
                break
            evicted.append(keep.pop(0))
        for record in evicted:
            self.discard(record.entry_id)
        return evicted

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        records = self.records()
        for record in records:
            self.discard(record.entry_id)
        return len(records)

    def __repr__(self) -> str:
        return f"StrategyStore(root={str(self.root)!r}, entries={len(self)})"
