"""Single source of truth for the library version.

Everything that needs the version — ``repro.__version__``, the strategy
store's provenance records, the service's ``/v1/healthz`` payload, the CLI's
``--version`` flag — imports it from here, so a release bump is one edit.
"""

from __future__ import annotations

__version__ = "1.1.0"
