"""Randomized response (Warner 1965), Example 2.7 / Table 1.

The output range equals the input domain; a user reports their true type
with probability proportional to ``e^eps`` and any other type with
probability proportional to 1:

    Q[o, u] = e^eps / (e^eps + n - 1)   if o == u
            = 1     / (e^eps + n - 1)   otherwise

``Q`` is doubly stochastic, so ``D_Q = I`` and the optimal reconstruction of
Theorem 3.10 coincides with the classical ``V = W Q^{-1}`` (Example 3.3).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DomainError
from repro.mechanisms.base import StrategyMatrix


def randomized_response(domain_size: int, epsilon: float) -> StrategyMatrix:
    """Build the randomized response strategy for a flat domain."""
    if domain_size < 2:
        raise DomainError("randomized response needs a domain of size >= 2")
    boost = np.exp(epsilon)
    matrix = np.full((domain_size, domain_size), 1.0)
    np.fill_diagonal(matrix, boost)
    matrix /= boost + domain_size - 1
    return StrategyMatrix(matrix, epsilon, name="Randomized Response")


def randomized_response_inverse(domain_size: int, epsilon: float) -> np.ndarray:
    """The closed-form inverse ``Q^{-1}`` from Example 3.3.

        Q^{-1} = 1/(e^eps - 1) * [ (e^eps + n - 2) I - (1 - I) ]

    Used in tests to confirm Theorem 3.10 reproduces the classical
    estimator for this mechanism.
    """
    boost = np.exp(epsilon)
    inverse = np.full((domain_size, domain_size), -1.0)
    np.fill_diagonal(inverse, boost + domain_size - 2)
    return inverse / (boost - 1.0)
