"""Distributed Matrix Mechanism for the local model (L1 and L2 flavours).

The central-model Matrix Mechanism [27, 30] answers a *strategy* set of
linear queries ``A`` with additive noise and reconstructs the workload as
``W = (W A^+) A``.  Its local-model translation [17] has every user report
their own strategy column plus noise:

    report_i = A e_{u_i} + z_i

and the server aggregates ``sum_i report_i = A x + sum_i z_i`` before
applying ``W A^+``.  Pure eps-LDP noise:

* **L1**: coordinate-wise Laplace calibrated to the *pairwise diameter*
  ``Delta_1(A) = max_{u,u'} ||a_u - a_u'||_1`` (a local randomizer must hide
  which of two arbitrary types a user holds) — per-coordinate variance
  ``2 (Delta_1 / eps)^2``.
* **L2**: the L2-ball K-norm mechanism, density ``~ exp(-eps ||z||_2 /
  Delta_2)`` with ``Delta_2`` the pairwise L2 diameter — per-coordinate
  variance ``(k+1) Delta_2^2 / eps^2`` for a ``k``-row strategy (radius is
  Gamma(k, Delta_2/eps), direction uniform on the sphere).

Strategy selection: the paper's comparator [17] is theoretical with no
released implementation.  We use the SVD-bound square-root strategy of Li &
Miklau — ``A`` with ``A^T A  proportional to  (W^T W)^{1/2}`` — which is the
exact optimizer of the relaxed central-model problem for the symmetric
workloads evaluated here, reduced to ``rank(W)`` rows (this matters for the
L2 flavour, whose noise grows with the row count).  The identity strategy is
also evaluated and the better of the two is kept, so the baseline is never
handicapped by the closed form.  See DESIGN.md "Substitutions".

Because the noise is data-independent, the per-user variance contribution is
the same for every user type: ``sigma_c^2 ||W A^+||_F^2``, computed in Gram
space below.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import OptimizationError
from repro.linalg import symmetrize
from repro.mechanisms.interface import Mechanism
from repro.workloads.base import Workload


def square_root_strategy(gram: np.ndarray, rcond: float = 1e-10) -> np.ndarray:
    """The rank-reduced square-root strategy ``A`` with ``A^T A = (W^T W)^{1/2}``.

    Returns ``A`` with ``rank(W)`` rows, scaled so the analysis below can
    renormalize sensitivities; rows correspond to the eigenbasis of the
    Gram matrix.
    """
    gram = symmetrize(np.asarray(gram, dtype=float))
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    cutoff = rcond * max(eigenvalues.max(initial=0.0), 0.0)
    keep = eigenvalues > cutoff
    if not keep.any():
        raise OptimizationError("workload Gram matrix is numerically zero")
    # X = (W^T W)^{1/2} has eigenvalues sqrt(lambda); A = X^{1/2} keeps rank.
    quarter_roots = eigenvalues[keep] ** 0.25
    return quarter_roots[:, None] * eigenvectors[:, keep].T


def column_norms(strategy: np.ndarray, norm: int) -> np.ndarray:
    """Per-column L1 or L2 norms of a strategy matrix."""
    if norm == 1:
        return np.abs(strategy).sum(axis=0)
    if norm == 2:
        return np.sqrt((strategy**2).sum(axis=0))
    raise OptimizationError(f"norm must be 1 or 2, got {norm}")


def local_sensitivity(strategy: np.ndarray, norm: int) -> float:
    """LDP sensitivity: the diameter ``max_{u,u'} ||a_u - a_u'||`` of the
    strategy columns.

    Unlike central DP (add/remove one record), a local randomizer must hide
    which of two *arbitrary* types a user holds, so noise is calibrated to
    the pairwise diameter.  For L2 the diameter is exact via the column Gram
    matrix; for L1 an exact diameter costs ``O(n^2 m)``, so the standard
    triangle-inequality bound ``2 max_u ||a_u||_1`` is used.
    """
    if norm == 1:
        return 2.0 * float(column_norms(strategy, 1).max())
    gram = strategy.T @ strategy
    squared_norms = np.diag(gram)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
    return float(np.sqrt(max(distances.max(), 0.0)))


def per_coordinate_noise_variance(
    num_rows: int, epsilon: float, norm: int, sensitivity: float = 1.0
) -> float:
    """Per-coordinate noise variance of the pure-eps local randomizer.

    L1: i.i.d. Laplace with scale ``sensitivity / eps`` per coordinate.
    L2: the L2-ball K-norm mechanism (density ``exp(-eps ||z|| / sens)``)
    whose radius is Gamma(k, sens/eps), giving per-coordinate variance
    ``(k + 1) sens^2 / eps^2``.
    """
    if norm == 1:
        return 2.0 * (sensitivity / epsilon) ** 2
    return (num_rows + 1.0) * (sensitivity / epsilon) ** 2


class DistributedMatrixMechanism(Mechanism):
    """The local-model Matrix Mechanism with L1 (Laplace) or L2 (K-norm) noise.

    Parameters
    ----------
    norm:
        1 for the Laplace flavour, 2 for the K-norm flavour.
    """

    def __init__(self, norm: int) -> None:
        if norm not in (1, 2):
            raise OptimizationError(f"norm must be 1 or 2, got {norm}")
        self.norm = norm
        self.name = f"Matrix Mechanism (L{norm})"

    # -- strategy selection -------------------------------------------------

    def strategy_for(self, workload: Workload) -> np.ndarray:
        """Sensitivity-1 strategy: better of square-root and identity."""
        candidates = [
            square_root_strategy(workload.gram()),
            np.eye(workload.domain_size),
        ]
        best, best_loss = None, np.inf
        for candidate in candidates:
            normalized = candidate / local_sensitivity(candidate, self.norm)
            loss = self._noise_loss(normalized, workload)
            if loss < best_loss:
                best, best_loss = normalized, loss
        return best

    def _noise_loss(self, strategy: np.ndarray, workload: Workload) -> float:
        """``sigma_c^2 ||W A^+||_F^2`` for a sensitivity-1 strategy at eps=1."""
        sigma = per_coordinate_noise_variance(strategy.shape[0], 1.0, self.norm)
        return sigma * self._reconstruction_energy(strategy, workload)

    @staticmethod
    def _reconstruction_energy(strategy: np.ndarray, workload: Workload) -> float:
        """``||W A^+||_F^2 = tr[A^+^T (W^T W) A^+]`` in Gram space."""
        pinv = np.linalg.pinv(strategy)
        return float(np.einsum("ij,ik,kj->", pinv, workload.gram(), pinv))

    # -- analysis ------------------------------------------------------------

    def per_user_variances(self, workload: Workload, epsilon: float) -> np.ndarray:
        """Constant vector: additive noise affects every user type equally."""
        strategy = self.strategy_for(workload)
        sigma = per_coordinate_noise_variance(strategy.shape[0], epsilon, self.norm)
        value = sigma * self._reconstruction_energy(strategy, workload)
        return np.full(workload.domain_size, value)

    # -- execution -------------------------------------------------------------

    def sample_noise(
        self, num_rows: int, epsilon: float, rng: np.random.Generator
    ) -> np.ndarray:
        """One user's noise vector for a sensitivity-1 strategy."""
        if self.norm == 1:
            return rng.laplace(scale=1.0 / epsilon, size=num_rows)
        direction = rng.normal(size=num_rows)
        direction /= np.linalg.norm(direction)
        radius = rng.gamma(shape=num_rows, scale=1.0 / epsilon)
        return radius * direction

    def run(
        self,
        workload: Workload,
        data_vector: np.ndarray,
        epsilon: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Execute the full distributed protocol and return workload answers."""
        rng = rng or np.random.default_rng()
        strategy = self.strategy_for(workload)
        data_vector = np.asarray(data_vector, dtype=float)
        num_users = int(round(data_vector.sum()))
        num_rows = strategy.shape[0]
        aggregate = strategy @ data_vector
        if self.norm == 1:
            remaining = num_users
            while remaining > 0:
                batch = min(remaining, 65536)
                aggregate += rng.laplace(
                    scale=1.0 / epsilon, size=(batch, num_rows)
                ).sum(axis=0)
                remaining -= batch
        else:
            directions = rng.normal(size=(num_users, num_rows))
            directions /= np.linalg.norm(directions, axis=1, keepdims=True)
            radii = rng.gamma(shape=num_rows, scale=1.0 / epsilon, size=num_users)
            aggregate += (radii[:, None] * directions).sum(axis=0)
        estimate = np.linalg.pinv(strategy) @ aggregate
        return workload.matvec(estimate)
