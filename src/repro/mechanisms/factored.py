"""Kronecker-factorized strategies for product domains.

A joint strategy over a product domain ``d_0 x ... x d_{k-1}`` that
randomizes each attribute independently is the Kronecker product of its
per-attribute strategies, ``Q = Q_{k-1} (x) ... (x) Q_0`` (attribute 0
fastest-varying, matching :class:`repro.domains.ProductDomain`).  Its
privacy ratio multiplies across factors — basic LDP composition — so the
joint budget is the *sum* of the per-factor budgets, and every object the
protocol needs factorizes too: row sums, the objective core
``A = Q^T D^-1 Q``, and the reconstruction operator of Theorem 3.10
(``B = B_{k-1} (x) ... (x) B_0``; see
:func:`repro.analysis.reconstruction.factored_reconstruction_operators`).

:class:`FactoredStrategy` keeps only the per-factor matrices —
``O(sum_i m_i d_i)`` memory — so domains with millions of cells, whose
``m x n`` joint matrix could never be allocated, are handled with the same
validated-strategy semantics as :class:`~repro.mechanisms.base.StrategyMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod

import numpy as np

from repro.exceptions import StochasticityError
from repro.linalg import DEFAULT_DENSE_CELL_CAP, KronOperator, dense_kron
from repro.mechanisms.base import DEFAULT_SAMPLE_CHUNK, StrategyMatrix

#: Magic string identifying a serialized :class:`FactoredStrategy` payload.
FACTORED_STRATEGY_MAGIC = "repro/factored-strategy"


@dataclass(frozen=True)
class FactoredStrategy:
    """A product-domain strategy stored as validated per-attribute factors.

    Parameters
    ----------
    factors:
        One :class:`~repro.mechanisms.base.StrategyMatrix` per attribute,
        attribute 0 first; factor ``i`` has shape ``(m_i, d_i)`` and its own
        budget ``eps_i``.  The joint strategy satisfies
        ``(sum_i eps_i)``-LDP by composition.
    name:
        Display name.

    Examples
    --------
    >>> from repro.mechanisms import randomized_response
    >>> joint = FactoredStrategy(
    ...     (randomized_response(3, 0.5), randomized_response(4, 0.5))
    ... )
    >>> joint.domain_size, joint.num_outputs, joint.epsilon
    (12, 12, 1.0)
    """

    factors: tuple[StrategyMatrix, ...]
    name: str = "FactoredStrategy"
    validate: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        factors = tuple(self.factors)
        if not factors:
            raise StochasticityError("FactoredStrategy needs at least one factor")
        for factor in factors:
            if not isinstance(factor, StrategyMatrix):
                raise StochasticityError(
                    "FactoredStrategy factors must be StrategyMatrix instances, "
                    f"got {type(factor).__name__}"
                )
        object.__setattr__(self, "factors", factors)

    # -- shape & structure -------------------------------------------------

    @property
    def num_attributes(self) -> int:
        return len(self.factors)

    @property
    def domain_sizes(self) -> tuple[int, ...]:
        """Per-attribute domain sizes ``(d_0, ..., d_{k-1})``."""
        return tuple(factor.domain_size for factor in self.factors)

    @property
    def output_sizes(self) -> tuple[int, ...]:
        """Per-attribute output alphabet sizes ``(m_0, ..., m_{k-1})``."""
        return tuple(factor.num_outputs for factor in self.factors)

    @property
    def domain_size(self) -> int:
        """Flat domain size ``n = prod_i d_i`` (may be in the millions)."""
        return prod(self.domain_sizes)

    @property
    def num_outputs(self) -> int:
        """Flat output alphabet size ``m = prod_i m_i``."""
        return prod(self.output_sizes)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_outputs, self.domain_size)

    @property
    def epsilon(self) -> float:
        """The composed budget ``sum_i eps_i`` (LDP composition)."""
        return float(sum(factor.epsilon for factor in self.factors))

    def realized_ratio(self) -> float:
        """The joint privacy ratio — the product of factor ratios."""
        return prod(factor.realized_ratio() for factor in self.factors)

    # -- implicit operators --------------------------------------------------

    def as_operator(self) -> KronOperator:
        """The joint probability table as an implicit linear operator."""
        return KronOperator([factor.probabilities for factor in self.factors])

    def reconstruction_factors(self) -> tuple[np.ndarray, ...]:
        """Per-factor reconstruction operators ``B(Q_i)`` (cached).

        The joint Theorem 3.10 operator is their Kronecker product; see
        :meth:`reconstruction_operator`.
        """
        cached = self.__dict__.get("_reconstruction_factors")
        if cached is None:
            from repro.analysis.reconstruction import (
                factored_reconstruction_operators,
            )

            cached = tuple(
                factored_reconstruction_operators(
                    [factor.probabilities for factor in self.factors]
                )
            )
            for operator in cached:
                operator.setflags(write=False)
            object.__setattr__(self, "_reconstruction_factors", cached)
        return cached

    def reconstruction_operator(self) -> KronOperator:
        """``B = B_{k-1} (x) ... (x) B_0`` as an implicit operator."""
        return KronOperator(list(self.reconstruction_factors()))

    def materialize(
        self, max_entries: int | None = DEFAULT_DENSE_CELL_CAP
    ) -> StrategyMatrix:
        """The explicit joint :class:`StrategyMatrix` (small domains only).

        Guarded by the allocation cap; the result is re-validated, which
        also double-checks the composition argument numerically.

        Examples
        --------
        >>> from repro.mechanisms import randomized_response
        >>> joint = FactoredStrategy(
        ...     (randomized_response(2, 0.5), randomized_response(3, 0.5))
        ... )
        >>> joint.materialize().shape
        (6, 6)
        """
        joint = dense_kron(
            [factor.probabilities for factor in self.factors],
            max_entries,
            what="factored strategy matrix",
        )
        return StrategyMatrix(joint, self.epsilon, name=self.name)

    # -- execution -----------------------------------------------------------

    def sample_attribute_responses(
        self,
        attribute_rows: np.ndarray,
        rng: np.random.Generator,
        chunk_size: int = DEFAULT_SAMPLE_CHUNK,
    ) -> np.ndarray:
        """Randomize a batch of users, one attribute column at a time.

        Parameters
        ----------
        attribute_rows:
            Integer array of shape ``(N, k)``; row ``u`` holds user ``u``'s
            per-attribute types.
        rng:
            Source of randomness (factors draw sequentially from it, so a
            seeded generator gives reproducible joint reports).
        chunk_size:
            Sampler block size per factor.

        Returns
        -------
        np.ndarray
            Responses of shape ``(N, k)``; column ``i`` is factor ``i``'s
            output id in ``[0, m_i)``.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.mechanisms import randomized_response
        >>> joint = FactoredStrategy(
        ...     (randomized_response(3, 1.0), randomized_response(4, 1.0))
        ... )
        >>> rows = np.array([[0, 1], [2, 3]])
        >>> joint.sample_attribute_responses(
        ...     rows, np.random.default_rng(0)
        ... ).shape
        (2, 2)
        """
        attribute_rows = np.asarray(attribute_rows)
        if attribute_rows.ndim != 2 or attribute_rows.shape[1] != len(self.factors):
            raise StochasticityError(
                f"attribute rows must have shape (N, {len(self.factors)}), "
                f"got {attribute_rows.shape}"
            )
        responses = np.empty(attribute_rows.shape, dtype=np.int64)
        for index, factor in enumerate(self.factors):
            responses[:, index] = factor.sample_responses(
                attribute_rows[:, index], rng, chunk_size=chunk_size
            )
        return responses

    def flatten_responses(self, responses: np.ndarray) -> np.ndarray:
        """Mixed-radix flat output ids (attribute 0 fastest-varying).

        Maps per-attribute responses to the row index the materialized
        joint strategy would have produced — the bridge for equivalence
        tests against the dense protocol path.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.mechanisms import randomized_response
        >>> joint = FactoredStrategy(
        ...     (randomized_response(3, 1.0), randomized_response(4, 1.0))
        ... )
        >>> joint.flatten_responses(np.array([[2, 3]]))
        array([11])
        """
        responses = np.asarray(responses, dtype=np.int64)
        flat = np.zeros(responses.shape[0], dtype=np.int64)
        stride = 1
        for index, size in enumerate(self.output_sizes):
            flat += responses[:, index] * stride
            stride *= size
        return flat

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Serialize all factors to one ``.npz`` file."""
        arrays = {
            "format_magic": np.asarray(FACTORED_STRATEGY_MAGIC),
            "name": np.asarray(self.name),
            "num_factors": np.asarray(len(self.factors), dtype=np.int64),
        }
        for index, factor in enumerate(self.factors):
            arrays[f"factor_{index}_probabilities"] = factor.probabilities
            arrays[f"factor_{index}_epsilon"] = np.asarray(factor.epsilon)
            arrays[f"factor_{index}_name"] = np.asarray(factor.name)
        np.savez_compressed(path, **arrays)

    @staticmethod
    def load(path) -> "FactoredStrategy":
        """Load a strategy saved with :meth:`save` (factors re-validated)."""
        with np.load(path, allow_pickle=False) as archive:
            if (
                "format_magic" not in archive.files
                or str(archive["format_magic"]) != FACTORED_STRATEGY_MAGIC
            ):
                raise StochasticityError(
                    f"{path!r} is not a serialized FactoredStrategy"
                )
            factors = tuple(
                StrategyMatrix(
                    archive[f"factor_{index}_probabilities"],
                    float(archive[f"factor_{index}_epsilon"]),
                    str(archive[f"factor_{index}_name"]),
                )
                for index in range(int(archive["num_factors"]))
            )
            return FactoredStrategy(factors, name=str(archive["name"]))

    def __repr__(self) -> str:
        shapes = " x ".join(
            f"{m}x{d}" for m, d in zip(self.output_sizes, self.domain_sizes)
        )
        return (
            f"FactoredStrategy({shapes}, epsilon={self.epsilon:g}, "
            f"name={self.name!r})"
        )
