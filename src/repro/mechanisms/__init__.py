"""LDP mechanisms as strategy matrices, plus the additive-noise family.

The strategy-matrix encodings follow Table 1 of the paper exactly; the
Hierarchical and Fourier mechanisms are built with the vertical mixture
combinator :func:`repro.mechanisms.base.stack_strategies`.  The distributed
Matrix Mechanism and the Gaussian mechanism report noisy strategy-query
answers instead of categorical outputs and implement the same comparison
interface.
"""

from repro.mechanisms.base import (
    FactorizationMechanism,
    StrategyMatrix,
    stack_strategies,
)
from repro.mechanisms.factored import FACTORED_STRATEGY_MAGIC, FactoredStrategy
from repro.mechanisms.fourier import fourier
from repro.mechanisms.gaussian import DEFAULT_DELTA, GaussianMechanism, gaussian_sigma
from repro.mechanisms.hadamard_response import hadamard_response
from repro.mechanisms.hierarchical import DEFAULT_BRANCHING, hierarchical, level_cells
from repro.mechanisms.interface import Mechanism, StrategyMechanism
from repro.mechanisms.local_hashing import affine_hashes, olh, optimal_bucket_count
from repro.mechanisms.matrix_mechanism import (
    DistributedMatrixMechanism,
    square_root_strategy,
)
from repro.mechanisms.randomized_response import (
    randomized_response,
    randomized_response_inverse,
)
from repro.mechanisms.rappor import MAX_RAPPOR_DOMAIN, rappor
from repro.mechanisms.registry import by_name, paper_baselines
from repro.mechanisms.subset_selection import (
    recommended_subset_size,
    subset_selection,
)
from repro.mechanisms.unary import oue

__all__ = [
    "DEFAULT_BRANCHING",
    "DEFAULT_DELTA",
    "DistributedMatrixMechanism",
    "FACTORED_STRATEGY_MAGIC",
    "FactoredStrategy",
    "FactorizationMechanism",
    "GaussianMechanism",
    "MAX_RAPPOR_DOMAIN",
    "Mechanism",
    "StrategyMatrix",
    "StrategyMechanism",
    "affine_hashes",
    "by_name",
    "fourier",
    "gaussian_sigma",
    "hadamard_response",
    "hierarchical",
    "level_cells",
    "olh",
    "optimal_bucket_count",
    "oue",
    "paper_baselines",
    "randomized_response",
    "randomized_response_inverse",
    "rappor",
    "recommended_subset_size",
    "square_root_strategy",
    "stack_strategies",
    "subset_selection",
]
