"""Strategy matrices and the workload factorization mechanism.

A :class:`StrategyMatrix` is the paper's encoding of an LDP mechanism as an
``m x n`` conditional probability table (Proposition 2.6).  A
:class:`FactorizationMechanism` pairs a strategy with a workload and a
reconstruction operator (Definition 3.2) and provides unbiased workload
estimates from aggregated responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reconstruction import (
    factorization_residual,
    is_factorizable,
    reconstruction_operator,
    strategy_row_sums,
)
from repro.exceptions import (
    FactorizationError,
    PrivacyViolationError,
    ProtocolError,
    StochasticityError,
)
from repro.linalg import is_column_stochastic, is_ldp_matrix, ldp_ratio, max_abs_column_sum_error
from repro.workloads.base import Workload

#: Users randomized per vectorized sampling block; bounds sampler memory to
#: ``O(chunk)`` scratch regardless of population size.
DEFAULT_SAMPLE_CHUNK = 65_536


@dataclass(frozen=True)
class StrategyMatrix:
    """A validated epsilon-LDP strategy matrix.

    Parameters
    ----------
    probabilities:
        The ``(m, n)`` table with ``probabilities[o, u] = Pr[output o | type u]``.
    epsilon:
        The privacy budget the matrix claims to satisfy.
    name:
        Display name of the mechanism this strategy encodes.
    validate:
        When True (default), construction verifies stochasticity and the
        privacy ratio and raises a typed error on violation.

    Examples
    --------
    >>> from repro.mechanisms import randomized_response
    >>> q = randomized_response(4, epsilon=1.0)
    >>> q.shape
    (4, 4)
    """

    probabilities: np.ndarray
    epsilon: float
    name: str = "Strategy"
    validate: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        matrix = np.asarray(self.probabilities, dtype=float)
        object.__setattr__(self, "probabilities", matrix)
        if matrix.ndim != 2:
            raise StochasticityError(f"strategy must be 2-D, got {matrix.ndim}-D")
        if self.epsilon <= 0:
            raise PrivacyViolationError(f"epsilon must be positive, got {self.epsilon}")
        if not self.validate:
            return
        if not is_column_stochastic(matrix):
            raise StochasticityError(
                "strategy columns are not probability distributions "
                f"(max column-sum error {max_abs_column_sum_error(matrix):.3e}, "
                f"min entry {matrix.min():.3e})"
            )
        if not is_ldp_matrix(matrix, self.epsilon):
            raise PrivacyViolationError(
                f"strategy violates {self.epsilon}-LDP: realized ratio "
                f"{ldp_ratio(matrix):.6g} > e^eps = {np.exp(self.epsilon):.6g}"
            )

    # -- shape & structure -------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """``(m, n)`` — outputs by user types."""
        return self.probabilities.shape

    @property
    def num_outputs(self) -> int:
        return self.probabilities.shape[0]

    @property
    def domain_size(self) -> int:
        return self.probabilities.shape[1]

    def row_sums(self) -> np.ndarray:
        """The diagonal of ``D_Q = Diag(Q 1)``."""
        return strategy_row_sums(self.probabilities)

    def realized_ratio(self) -> float:
        """The privacy ratio the matrix actually achieves (<= e^eps)."""
        return ldp_ratio(self.probabilities)

    def condensed(self) -> "StrategyMatrix":
        """Drop all-zero output rows (outputs that can never occur)."""
        live = self.probabilities.sum(axis=1) > 0
        if live.all():
            return self
        return StrategyMatrix(
            self.probabilities[live], self.epsilon, self.name, validate=False
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Serialize to ``.npz`` (strategy optimization is an offline,
        one-time cost — Section 6.6 — so deployments ship a saved matrix to
        clients)."""
        np.savez_compressed(
            path,
            probabilities=self.probabilities,
            epsilon=np.asarray(self.epsilon),
            name=np.asarray(self.name),
        )

    @staticmethod
    def load(path) -> "StrategyMatrix":
        """Load a strategy saved with :meth:`save` (re-validated on load, so
        a tampered file cannot smuggle in a privacy violation)."""
        with np.load(path, allow_pickle=False) as archive:
            return StrategyMatrix(
                archive["probabilities"],
                float(archive["epsilon"]),
                str(archive["name"]),
            )

    # -- execution ----------------------------------------------------------

    def response_cdf(self) -> np.ndarray:
        """Per-column response CDFs, computed once and cached.

        ``response_cdf()[o, u] = Pr[output <= o | type u]``.  The last row is
        clamped to exactly 1.0 so a uniform draw in ``[0, 1)`` can never fall
        past the end of a column (column sums are only stochastic up to
        floating-point tolerance).
        """
        cached = self.__dict__.get("_response_cdf")
        if cached is None:
            cached = np.cumsum(self.probabilities, axis=0)
            cached[-1, :] = 1.0
            cached.setflags(write=False)
            object.__setattr__(self, "_response_cdf", cached)
        return cached

    def _offset_cdf(self) -> np.ndarray:
        """Flattened inverse-CDF lookup table for the vectorized sampler.

        Column ``u``'s CDF is shifted by ``+u`` and the columns are laid out
        contiguously, producing one globally sorted array: a single
        ``searchsorted`` with key ``u + draw`` then inverts every user's CDF
        at once, whatever their types are.
        """
        cached = self.__dict__.get("_offset_cdf_flat")
        if cached is None:
            offsets = np.arange(self.domain_size, dtype=float)
            cached = np.ascontiguousarray(
                (self.response_cdf() + offsets[None, :]).T
            ).ravel()
            cached.setflags(write=False)
            object.__setattr__(self, "_offset_cdf_flat", cached)
        return cached

    def sample_responses(
        self,
        user_types: np.ndarray,
        rng: np.random.Generator | None = None,
        chunk_size: int = DEFAULT_SAMPLE_CHUNK,
    ) -> np.ndarray:
        """Randomize a batch of users: one independent report per entry.

        Vectorized inverse-CDF sampling over the cached offset table:
        ``O(N log(nm))`` time and ``O(chunk_size)`` scratch memory, versus the
        naive ``O(N m)`` time *and* memory of materializing every user's
        response CDF.  Draws are consumed from ``rng`` one chunk at a time in
        order, so results are bit-identical for a given generator state
        regardless of ``chunk_size``.
        """
        rng = rng or np.random.default_rng()
        user_types = np.asarray(user_types)
        if user_types.size == 0:
            return np.zeros(0, dtype=np.int64)
        if user_types.min() < 0 or user_types.max() >= self.domain_size:
            raise ProtocolError("user types outside the strategy's domain")
        if chunk_size < 1:
            raise ProtocolError(f"chunk size must be >= 1, got {chunk_size}")
        user_types = user_types.astype(np.int64, copy=False)
        table = self._offset_cdf()
        num_outputs = self.num_outputs
        responses = np.empty(user_types.shape[0], dtype=np.int64)
        for start in range(0, user_types.shape[0], chunk_size):
            chunk = user_types[start : start + chunk_size]
            keys = chunk + rng.random(chunk.shape[0])
            found = np.searchsorted(table, keys, side="left")
            np.clip(
                found - chunk * num_outputs,
                0,
                num_outputs - 1,
                out=responses[start : start + chunk.shape[0]],
            )
        return responses

    def sample_response(
        self, user_type: int, rng: np.random.Generator | None = None
    ) -> int:
        """One client-side invocation: randomize a single user's type."""
        rng = rng or np.random.default_rng()
        return int(rng.choice(self.num_outputs, p=self.probabilities[:, user_type]))

    def sample_histogram(
        self, data_vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Response histogram ``y = M_Q(x)`` for a whole population.

        Each user type's responses are a multinomial draw from its strategy
        column, so the full histogram is sampled in ``O(n)`` draws rather
        than ``O(N)``.
        """
        rng = rng or np.random.default_rng()
        data_vector = np.asarray(data_vector)
        if data_vector.shape != (self.domain_size,):
            raise StochasticityError(
                f"data vector shape {data_vector.shape} does not match domain "
                f"size {self.domain_size}"
            )
        histogram = np.zeros(self.num_outputs)
        for user_type, count in enumerate(data_vector):
            count = int(count)
            if count > 0:
                histogram += rng.multinomial(count, self.probabilities[:, user_type])
        return histogram


def stack_strategies(
    components: list[tuple[float, np.ndarray]], epsilon: float, name: str
) -> StrategyMatrix:
    """Build a mixture mechanism: run component ``l`` with probability ``w_l``.

    The stacked matrix ``[w_1 Q_1; w_2 Q_2; ...]`` is column-stochastic when
    the weights sum to one and each block is column-stochastic, and it is
    epsilon-LDP when every block is (ratios act within blocks).  This is the
    combinator behind the Hierarchical and Fourier mechanisms.
    """
    weights = np.array([weight for weight, _ in components], dtype=float)
    if weights.min() < 0 or abs(weights.sum() - 1.0) > 1e-9:
        raise StochasticityError(
            f"mixture weights must be a distribution, got sum {weights.sum():.6g}"
        )
    blocks = [weight * np.asarray(block, dtype=float) for weight, block in components]
    return StrategyMatrix(np.vstack(blocks), epsilon, name)


class FactorizationMechanism:
    """The workload factorization mechanism ``M_{V,Q}`` (Definition 3.2).

    Parameters
    ----------
    workload:
        The target workload ``W``.
    strategy:
        A validated epsilon-LDP strategy matrix ``Q``.
    operator:
        Optional reconstruction operator ``B`` with ``V = W B``.  Defaults
        to the variance-optimal operator of Theorem 3.10.

    Raises
    ------
    FactorizationError
        If ``W`` is not in the row space of ``Q`` (no valid ``V`` exists).
    """

    def __init__(
        self,
        workload: Workload,
        strategy: StrategyMatrix,
        operator: np.ndarray | None = None,
    ) -> None:
        if workload.domain_size != strategy.domain_size:
            raise FactorizationError(
                f"workload domain {workload.domain_size} != strategy domain "
                f"{strategy.domain_size}"
            )
        self.workload = workload
        self.strategy = strategy
        if operator is None:
            operator = reconstruction_operator(strategy.probabilities)
        self.operator = np.asarray(operator, dtype=float)
        if self.operator.shape != (workload.domain_size, strategy.num_outputs):
            raise FactorizationError(
                f"operator shape {self.operator.shape} != "
                f"({workload.domain_size}, {strategy.num_outputs})"
            )
        if not is_factorizable(workload.gram(), strategy.probabilities, self.operator):
            residual = factorization_residual(
                workload.gram(), strategy.probabilities, self.operator
            )
            raise FactorizationError(
                f"workload {workload.name!r} is not in the row space of strategy "
                f"{strategy.name!r} (residual {residual:.3e}); the factorization "
                "mechanism is undefined for this pair"
            )

    @property
    def epsilon(self) -> float:
        return self.strategy.epsilon

    def reconstruction_matrix(self) -> np.ndarray:
        """The explicit ``V = W B`` (materializes the workload matrix)."""
        return self.workload.matrix @ self.operator

    def estimate_data_vector(self, response_histogram: np.ndarray) -> np.ndarray:
        """Unbiased estimate ``x_hat = B y`` of the data vector.

        (Unbiased for the rowspace projection of ``x``; workload answers
        ``W x_hat`` are always unbiased for ``W x``.)
        """
        return self.operator @ np.asarray(response_histogram, dtype=float)

    def estimate_workload(self, response_histogram: np.ndarray) -> np.ndarray:
        """Unbiased workload answers ``V y = W (B y)``."""
        return self.workload.matvec(self.estimate_data_vector(response_histogram))

    def run(
        self, data_vector: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Execute the full mechanism: randomize, aggregate, reconstruct."""
        histogram = self.strategy.sample_histogram(data_vector, rng)
        return self.estimate_workload(histogram)
