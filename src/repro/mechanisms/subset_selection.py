"""Subset selection (Ye & Barg 2018), Table 1 row 4.

The user reports a size-``d`` subset of the domain, favouring subsets that
contain their own type:

    Q[S, u]  proportional to  e^eps  if u in S,  else 1

The recommended subset size is ``d ~ n / (e^eps + 1)``.  The output range
has ``C(n, d)`` elements, so like RAPPOR this mechanism is only
materialized for small domains (the paper likewise omits it from the
large-domain experiments); the closed-form column normalizer is

    Z = e^eps * C(n-1, d-1) + C(n-1, d).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
from scipy.special import comb

from repro.exceptions import DomainError
from repro.mechanisms.base import StrategyMatrix

#: Refuse to enumerate more than this many subsets.
MAX_SUBSET_OUTPUTS = 200_000


def recommended_subset_size(domain_size: int, epsilon: float) -> int:
    """The error-optimal subset size ``round(n / (e^eps + 1))``, at least 1."""
    return max(1, round(domain_size / (np.exp(epsilon) + 1.0)))


def subset_selection(
    domain_size: int, epsilon: float, subset_size: int | None = None
) -> StrategyMatrix:
    """Build the explicit subset selection strategy (``C(n, d)`` outputs)."""
    if domain_size < 2:
        raise DomainError("subset selection needs a domain of size >= 2")
    d = recommended_subset_size(domain_size, epsilon) if subset_size is None else subset_size
    if not 1 <= d <= domain_size:
        raise DomainError(f"subset size must be in [1, {domain_size}], got {d}")
    num_outputs = comb(domain_size, d, exact=True)
    if num_outputs > MAX_SUBSET_OUTPUTS:
        raise DomainError(
            f"subset selection with C({domain_size}, {d}) = {num_outputs} outputs "
            f"exceeds the {MAX_SUBSET_OUTPUTS} limit for explicit materialization"
        )
    boost = np.exp(epsilon)
    normalizer = boost * comb(domain_size - 1, d - 1, exact=True) + comb(
        domain_size - 1, d, exact=True
    )
    matrix = np.empty((num_outputs, domain_size))
    for row, subset in enumerate(combinations(range(domain_size), d)):
        indicator = np.zeros(domain_size, dtype=bool)
        indicator[list(subset)] = True
        matrix[row] = np.where(indicator, boost, 1.0)
    matrix /= normalizer
    return StrategyMatrix(matrix, epsilon, name="Subset Selection")
