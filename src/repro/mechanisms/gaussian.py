"""The Gaussian mechanism for local linear-query estimation (Bassily 2019).

Each user one-hot encodes their type and adds i.i.d. Gaussian noise:

    report_i = e_{u_i} + N(0, sigma^2 I_n),
    sigma = sqrt(2) * sqrt(2 ln(1.25 / delta)) / eps

(the L2 distance between two one-hot encodings is sqrt(2)).  This gives
(eps, delta)-LDP rather than pure eps-LDP — the paper omits it from its
comparison because it is strictly dominated by the L2 Matrix Mechanism, and
we reproduce it as an extension so that claim can be checked.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PrivacyViolationError
from repro.mechanisms.interface import Mechanism
from repro.workloads.base import Workload

#: delta used when callers do not specify one (a common benchmark value).
DEFAULT_DELTA = 1e-6


def gaussian_sigma(epsilon: float, delta: float = DEFAULT_DELTA) -> float:
    """Per-coordinate noise scale of the classic analytic Gaussian mechanism."""
    if epsilon <= 0:
        raise PrivacyViolationError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise PrivacyViolationError(f"delta must be in (0, 1), got {delta}")
    return np.sqrt(2.0) * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon


class GaussianMechanism(Mechanism):
    """Local Gaussian mechanism (approximate LDP), strategy = identity."""

    def __init__(self, delta: float = DEFAULT_DELTA) -> None:
        self.delta = delta
        self.name = "Gaussian"

    def per_user_variances(self, workload: Workload, epsilon: float) -> np.ndarray:
        """Constant per-type variance ``sigma^2 ||W||_F^2``."""
        sigma = gaussian_sigma(epsilon, self.delta)
        value = sigma**2 * workload.frobenius_norm_squared()
        return np.full(workload.domain_size, value)

    def run(
        self,
        workload: Workload,
        data_vector: np.ndarray,
        epsilon: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Execute the protocol and return workload answers."""
        rng = rng or np.random.default_rng()
        data_vector = np.asarray(data_vector, dtype=float)
        num_users = int(round(data_vector.sum()))
        sigma = gaussian_sigma(epsilon, self.delta)
        noise_total = rng.normal(
            scale=sigma * np.sqrt(num_users), size=workload.domain_size
        )
        return workload.matvec(data_vector + noise_total)
