"""Fourier mechanism for binary product domains (Cormode et al. 2018),
Section 6.1.

Each user samples a Fourier coefficient index — a non-empty attribute
subset ``S`` — uniformly from the configured collection, evaluates the
character ``chi_S(u) = (-1)^{<S, u>}`` of their own type, and reports the
sign through binary randomized response.  The aggregate estimates every
selected Fourier coefficient of the data vector; marginal and parity
queries are linear combinations of low-order coefficients, which is why the
mechanism was designed for marginal release.

As a strategy matrix: the uniform mixture of the 2-output blocks

    Q_S[+, u] = e^eps / (e^eps + 1)  if chi_S(u) = +1 else 1 / (e^eps + 1)

``degree=None`` (default) uses *all* ``n - 1`` non-empty subsets, making
the strategy full-rank so that any workload over the domain is answerable;
``degree=d`` restricts to subsets of at most ``d`` attributes, which
concentrates the budget on low-order coefficients but can only answer
workloads spanned by them (e.g. 3-way marginals or degree-3 parities).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DomainError
from repro.linalg.bits import popcount, subsets_of_size
from repro.mechanisms.base import StrategyMatrix, stack_strategies


def fourier(
    domain_size: int, epsilon: float, degree: int | None = None
) -> StrategyMatrix:
    """Build the Fourier strategy over ``{0,1}^k`` with ``n = 2^k = domain_size``."""
    num_attributes = domain_size.bit_length() - 1
    if domain_size < 2 or (1 << num_attributes) != domain_size:
        raise DomainError(
            f"Fourier mechanism needs a power-of-two domain, got {domain_size}"
        )
    if degree is None:
        degree = num_attributes
    if not 1 <= degree <= num_attributes:
        raise DomainError(
            f"degree must be in [1, {num_attributes}], got {degree}"
        )
    masks: list[int] = []
    for size in range(1, degree + 1):
        masks.extend(subsets_of_size(num_attributes, size))
    types = np.arange(domain_size)
    boost = np.exp(epsilon)
    weight = 1.0 / len(masks)
    components = []
    for mask in masks:
        negative = (popcount(np.full(domain_size, mask) & types) & 1).astype(bool)
        positive_row = np.where(negative, 1.0, boost) / (boost + 1.0)
        components.append((weight, np.vstack([positive_row, 1.0 - positive_row])))
    name = "Fourier" if degree == num_attributes else f"Fourier(deg={degree})"
    return stack_strategies(components, epsilon, name=name)
