"""RAPPOR (Erlingsson et al. 2014), Table 1 row 2.

Each user one-hot encodes their type and flips every bit independently,
keeping it with probability ``e^{eps/2} / (e^{eps/2} + 1)``.  The output
range is ``{0,1}^n``, so the explicit strategy matrix has ``2^n`` rows:

    Q[o, u]  proportional to  exp(eps/2)^(n - ||o - e_u||_1)

The exponential output range is why the paper omits RAPPOR from its
large-domain experiments; this implementation enforces a domain-size guard
and exists to validate the Table 1 encoding and for small-domain use.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DomainError
from repro.linalg.bits import popcount
from repro.mechanisms.base import StrategyMatrix

#: RAPPOR materializes 2^n outputs; refuse beyond this domain size.
MAX_RAPPOR_DOMAIN = 16


def rappor(domain_size: int, epsilon: float) -> StrategyMatrix:
    """Build the explicit RAPPOR strategy matrix (``2^n`` outputs)."""
    if domain_size < 2:
        raise DomainError("RAPPOR needs a domain of size >= 2")
    if domain_size > MAX_RAPPOR_DOMAIN:
        raise DomainError(
            f"RAPPOR has 2^n outputs; n={domain_size} exceeds the "
            f"{MAX_RAPPOR_DOMAIN}-type limit for explicit materialization"
        )
    keep = np.exp(epsilon / 2.0)
    keep_probability = keep / (keep + 1.0)
    outputs = np.arange(1 << domain_size, dtype=np.int64)
    one_hots = np.int64(1) << np.arange(domain_size, dtype=np.int64)
    flips = popcount(outputs[:, None] ^ one_hots[None, :])
    matrix = keep_probability ** (domain_size - flips) * (
        1.0 - keep_probability
    ) ** flips
    return StrategyMatrix(matrix, epsilon, name="RAPPOR")
