"""Registry of the comparison mechanisms from the paper's experiments.

:func:`paper_baselines` returns the six competitors of Section 6 (the
"Optimized" mechanism itself lives in :mod:`repro.optimization.optimized`
and is appended by the experiment harness).  :func:`by_name` resolves a
display name to a fresh mechanism instance.
"""

from __future__ import annotations

from repro.exceptions import ReproError
from repro.mechanisms.fourier import fourier
from repro.mechanisms.gaussian import GaussianMechanism
from repro.mechanisms.hadamard_response import hadamard_response
from repro.mechanisms.hierarchical import hierarchical
from repro.mechanisms.interface import Mechanism, StrategyMechanism
from repro.mechanisms.local_hashing import olh
from repro.mechanisms.matrix_mechanism import DistributedMatrixMechanism
from repro.mechanisms.randomized_response import randomized_response
from repro.mechanisms.rappor import rappor
from repro.mechanisms.subset_selection import subset_selection
from repro.mechanisms.unary import oue


def paper_baselines() -> list[Mechanism]:
    """The six competitors of Figures 1-3, in the paper's legend order."""
    return [
        StrategyMechanism("Randomized Response", randomized_response),
        StrategyMechanism("Hadamard", hadamard_response),
        StrategyMechanism("Hierarchical", hierarchical),
        StrategyMechanism("Fourier", fourier),
        DistributedMatrixMechanism(norm=1),
        DistributedMatrixMechanism(norm=2),
    ]


def by_name(name: str) -> Mechanism:
    """Resolve a mechanism display name to a fresh instance.

    Includes the Table 1 mechanisms that the experiments omit (RAPPOR,
    Subset Selection) and the Gaussian extension.
    """
    factories = {
        "Randomized Response": lambda: StrategyMechanism(
            "Randomized Response", randomized_response
        ),
        "Hadamard": lambda: StrategyMechanism("Hadamard", hadamard_response),
        "Hierarchical": lambda: StrategyMechanism("Hierarchical", hierarchical),
        "Fourier": lambda: StrategyMechanism("Fourier", fourier),
        "RAPPOR": lambda: StrategyMechanism("RAPPOR", rappor),
        "Subset Selection": lambda: StrategyMechanism(
            "Subset Selection", subset_selection
        ),
        "Matrix Mechanism (L1)": lambda: DistributedMatrixMechanism(norm=1),
        "Matrix Mechanism (L2)": lambda: DistributedMatrixMechanism(norm=2),
        "Gaussian": GaussianMechanism,
        "OUE": lambda: StrategyMechanism("OUE", oue),
        "OLH": lambda: StrategyMechanism("OLH", olh),
    }
    if name not in factories:
        raise ReproError(
            f"unknown mechanism {name!r}; known: {sorted(factories)}"
        )
    return factories[name]()
