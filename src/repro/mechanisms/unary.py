"""Optimized Unary Encoding (OUE; Wang et al. 2017, cited as [41]).

Like RAPPOR the user one-hot encodes and perturbs each bit independently,
but asymmetrically: the user's own bit is kept with probability 1/2, while
every other bit is set with probability ``q = 1 / (e^eps + 1)``.  Wang et
al. show this choice minimizes frequency-estimation variance within the
unary-encoding family.  The output range is ``{0,1}^n``, so like RAPPOR the
explicit strategy matrix is only materialized for small domains.

Per-bit report distribution:

    own bit:    Pr[1] = 1/2
    other bit:  Pr[1] = q = 1 / (e^eps + 1)

Privacy: flipping the user's type changes two bit distributions; the worst
output likelihood ratio is ``(1/2) (1-q) / ((1/2) q) = e^eps`` — exactly
eps-LDP.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DomainError
from repro.mechanisms.base import StrategyMatrix
from repro.mechanisms.rappor import MAX_RAPPOR_DOMAIN


def oue(domain_size: int, epsilon: float) -> StrategyMatrix:
    """Build the explicit OUE strategy matrix (``2^n`` outputs)."""
    if domain_size < 2:
        raise DomainError("OUE needs a domain of size >= 2")
    if domain_size > MAX_RAPPOR_DOMAIN:
        raise DomainError(
            f"OUE has 2^n outputs; n={domain_size} exceeds the "
            f"{MAX_RAPPOR_DOMAIN}-type limit for explicit materialization"
        )
    off_probability = 1.0 / (np.exp(epsilon) + 1.0)
    outputs = np.arange(1 << domain_size, dtype=np.int64)
    bits = (outputs[:, None] >> np.arange(domain_size)[None, :]) & 1

    matrix = np.empty((outputs.size, domain_size))
    for user_type in range(domain_size):
        per_bit_on = np.full(domain_size, off_probability)
        per_bit_on[user_type] = 0.5
        probabilities = np.where(bits == 1, per_bit_on, 1.0 - per_bit_on)
        matrix[:, user_type] = probabilities.prod(axis=1)
    return StrategyMatrix(matrix, epsilon, name="OUE")
