"""Hadamard response (Acharya, Sun, Zhang 2018), Table 1 row 3.

Let ``K = 2^ceil(log2(n+1))`` and associate user type ``u`` with column
``u + 1`` of the ``K x K`` Sylvester-Hadamard matrix (column 0 — the
all-ones column — is skipped because it carries no information).  The user
reports output ``o`` in ``[K]`` with probability proportional to ``e^eps``
when ``H[o, u+1] = +1`` and ``1`` otherwise.  Every non-trivial Hadamard
column is balanced (K/2 entries of each sign), so each strategy column sums
to ``K/2 (e^eps + 1)`` before normalization.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DomainError
from repro.linalg import hadamard_matrix, next_power_of_two
from repro.mechanisms.base import StrategyMatrix


def hadamard_response(domain_size: int, epsilon: float) -> StrategyMatrix:
    """Build the Hadamard response strategy (``K`` outputs)."""
    if domain_size < 2:
        raise DomainError("Hadamard response needs a domain of size >= 2")
    order = next_power_of_two(domain_size + 1)
    hadamard = hadamard_matrix(order)
    boost = np.exp(epsilon)
    matrix = np.where(hadamard[:, 1 : domain_size + 1] > 0, boost, 1.0)
    matrix *= 2.0 / (order * (boost + 1.0))
    return StrategyMatrix(matrix, epsilon, name="Hadamard")
