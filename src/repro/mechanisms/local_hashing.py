"""Optimized Local Hashing (OLH; Wang et al. 2017, cited as [41]).

Each user samples a hash function ``h : [n] -> [g]`` from a shared family,
runs randomized response over the ``g`` buckets on ``h(u)``, and reports the
pair ``(h, bucket)``.  Wang et al. show ``g = e^eps + 1`` minimizes variance
for frequency estimation.

As a strategy matrix this is the uniform vertical mixture of per-hash
blocks ``Q_h[c, u] = RR_g[c, h(u)]`` — the same combinator as Hierarchical
and Fourier.  The ideal analysis assumes a fresh universal hash per user;
here a finite family of ``num_hashes`` seeded affine hashes stands in, which
keeps the matrix explicit (``m = num_hashes * g`` rows) at a small, testable
approximation cost.  More hashes converge to the ideal mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DomainError
from repro.mechanisms.base import StrategyMatrix, stack_strategies
from repro.mechanisms.randomized_response import randomized_response

#: A prime comfortably above any materializable domain size.
_HASH_PRIME = 2_147_483_647


def optimal_bucket_count(epsilon: float) -> int:
    """Wang et al.'s variance-optimal ``g = e^eps + 1`` (at least 2)."""
    return max(2, round(np.exp(epsilon) + 1.0))


def affine_hashes(
    domain_size: int, num_buckets: int, num_hashes: int, seed: int
) -> np.ndarray:
    """A ``(num_hashes, domain_size)`` table of bucket assignments.

    Row ``s`` is the affine hash ``u -> ((a_s u + b_s) mod p) mod g`` with
    ``a_s != 0``; the family is pairwise close to uniform, which is all the
    OLH analysis needs.
    """
    rng = np.random.default_rng(seed)
    multipliers = rng.integers(1, _HASH_PRIME, size=num_hashes, dtype=np.int64)
    offsets = rng.integers(0, _HASH_PRIME, size=num_hashes, dtype=np.int64)
    types = np.arange(domain_size, dtype=np.int64)
    return (
        (multipliers[:, None] * types[None, :] + offsets[:, None]) % _HASH_PRIME
    ) % num_buckets


def olh(
    domain_size: int,
    epsilon: float,
    num_hashes: int | None = None,
    num_buckets: int | None = None,
    seed: int = 0,
) -> StrategyMatrix:
    """Build the OLH strategy with an explicit finite hash family."""
    if domain_size < 2:
        raise DomainError("OLH needs a domain of size >= 2")
    buckets = optimal_bucket_count(epsilon) if num_buckets is None else num_buckets
    if buckets < 2:
        raise DomainError(f"OLH needs >= 2 buckets, got {buckets}")
    hashes = 2 * domain_size if num_hashes is None else num_hashes
    if hashes < 1:
        raise DomainError(f"OLH needs >= 1 hash, got {hashes}")
    table = affine_hashes(domain_size, buckets, hashes, seed)
    base = randomized_response(buckets, epsilon).probabilities
    weight = 1.0 / hashes
    components = [(weight, base[:, table[index]]) for index in range(hashes)]
    return stack_strategies(components, epsilon, name="OLH")
