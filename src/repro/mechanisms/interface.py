"""The unified mechanism-comparison interface.

Every mechanism in the paper's evaluation — the strategy-matrix family and
the additive-noise family (Matrix Mechanism, Gaussian) — implements
:class:`Mechanism`: a name, per-user-type variance contributions on a
workload, and an executable protocol.  Sample complexity (the paper's
evaluation metric) derives from the variances exactly as in Corollary 5.4.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.analysis.reconstruction import is_factorizable, reconstruction_operator
from repro.analysis.sample_complexity import (
    PAPER_ALPHA,
    sample_complexity_from_variances,
)
from repro.analysis.variance import per_user_variances as _strategy_variances
from repro.mechanisms.base import FactorizationMechanism, StrategyMatrix
from repro.workloads.base import Workload


class Mechanism(abc.ABC):
    """A mechanism that can answer (or decline) any linear workload."""

    name: str = "Mechanism"

    @abc.abstractmethod
    def per_user_variances(self, workload: Workload, epsilon: float) -> np.ndarray:
        """Per-user-type variance contributions ``t_u`` (Theorem 3.4 inner
        sum).  Entries are ``inf`` when the mechanism cannot answer the
        workload (factorization infeasible)."""

    @abc.abstractmethod
    def run(
        self,
        workload: Workload,
        data_vector: np.ndarray,
        epsilon: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Execute the protocol on a data vector; returns workload answers."""

    # -- derived metrics -----------------------------------------------------

    def worst_case_variance(
        self, workload: Workload, epsilon: float, num_users: float = 1.0
    ) -> float:
        """``L_worst`` (Corollary 3.5) for ``num_users`` users."""
        return float(num_users * np.max(self.per_user_variances(workload, epsilon)))

    def average_case_variance(
        self, workload: Workload, epsilon: float, num_users: float = 1.0
    ) -> float:
        """``L_avg`` (Corollary 3.6) for ``num_users`` users."""
        return float(num_users * np.mean(self.per_user_variances(workload, epsilon)))

    def sample_complexity(
        self, workload: Workload, epsilon: float, alpha: float = PAPER_ALPHA
    ) -> float:
        """Worst-case sample complexity at normalized-variance target alpha."""
        t = self.per_user_variances(workload, epsilon)
        return sample_complexity_from_variances(t, workload.num_queries, alpha)

    def sample_complexity_on_distribution(
        self,
        workload: Workload,
        epsilon: float,
        distribution: np.ndarray,
        alpha: float = PAPER_ALPHA,
    ) -> float:
        """Data-dependent sample complexity (Section 6.4)."""
        t = self.per_user_variances(workload, epsilon)
        distribution = np.asarray(distribution, dtype=float)
        weights = distribution / distribution.sum()
        return float(weights @ t / (workload.num_queries * alpha))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class StrategyMechanism(Mechanism):
    """A mechanism defined by a strategy-matrix factory.

    Fixed baselines (RR, Hadamard, Hierarchical, Fourier, ...) use the same
    strategy for every workload over a given domain, so strategies and their
    reconstruction operators are cached per ``(domain_size, epsilon)``.

    Parameters
    ----------
    name:
        Display name.
    factory:
        Callable ``factory(domain_size, epsilon) -> StrategyMatrix``.
    """

    def __init__(self, name: str, factory) -> None:
        self.name = name
        self._factory = factory
        self._cache: dict[tuple[int, float], tuple[StrategyMatrix, np.ndarray]] = {}

    def strategy_for(self, workload: Workload, epsilon: float) -> StrategyMatrix:
        """The strategy used on this workload (workload-independent here)."""
        return self._cached(workload, epsilon)[0]

    def reconstruction_for(self, workload: Workload, epsilon: float) -> np.ndarray:
        """The Theorem 3.10 reconstruction operator ``B`` for the strategy."""
        return self._cached(workload, epsilon)[1]

    def _cached(
        self, workload: Workload, epsilon: float
    ) -> tuple[StrategyMatrix, np.ndarray]:
        key = (workload.domain_size, round(float(epsilon), 12))
        if key not in self._cache:
            strategy = self._factory(workload.domain_size, epsilon)
            operator = reconstruction_operator(strategy.probabilities)
            self._cache[key] = (strategy, operator)
        return self._cache[key]

    def factorization(
        self, workload: Workload, epsilon: float
    ) -> FactorizationMechanism:
        """The concrete factorization mechanism for a workload."""
        strategy = self.strategy_for(workload, epsilon)
        operator = self.reconstruction_for(workload, epsilon)
        return FactorizationMechanism(workload, strategy, operator)

    def per_user_variances(self, workload: Workload, epsilon: float) -> np.ndarray:
        strategy = self.strategy_for(workload, epsilon)
        operator = self.reconstruction_for(workload, epsilon)
        gram = workload.gram()
        if not is_factorizable(gram, strategy.probabilities, operator):
            return np.full(workload.domain_size, np.inf)
        return _strategy_variances(strategy.probabilities, gram, operator)

    def run(
        self,
        workload: Workload,
        data_vector: np.ndarray,
        epsilon: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        return self.factorization(workload, epsilon).run(data_vector, rng)
