"""Hierarchical mechanism for range queries (Cormode et al. 2019; Wang et
al. 2019), Section 6.1.

The domain is covered by a hierarchy of levels: level ``l`` partitions the
``n`` types into cells of ``branching^l`` consecutive types.  Each user
samples a level uniformly at random and runs randomized response over the
cells of that level on the cell containing their type.  Range queries then
decompose into a small number of cells across levels, which is why this
strategy is accurate for Prefix / AllRange workloads.

As a strategy matrix this is the uniform vertical mixture of the per-level
strategies ``Q_l[c, u] = RR_{n_l}[c, cell_l(u)]`` (each column-stochastic
and eps-LDP, so the mixture is too).  Levels with a single cell carry no
information and are skipped.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DomainError
from repro.mechanisms.base import StrategyMatrix, stack_strategies
from repro.mechanisms.randomized_response import randomized_response

#: Default branching factor; ~4-5 is the sweet spot reported for LDP
#: hierarchies by Cormode et al.
DEFAULT_BRANCHING = 4


def level_cells(domain_size: int, branching: int) -> list[int]:
    """Number of cells at each informative level, finest first."""
    cells = []
    width = 1
    while (count := -(-domain_size // width)) >= 2:
        cells.append(count)
        width *= branching
    return cells


def hierarchical(
    domain_size: int, epsilon: float, branching: int = DEFAULT_BRANCHING
) -> StrategyMatrix:
    """Build the hierarchical strategy for a flat (ordered) domain."""
    if domain_size < 2:
        raise DomainError("hierarchical mechanism needs a domain of size >= 2")
    if branching < 2:
        raise DomainError(f"branching factor must be >= 2, got {branching}")
    cells_per_level = level_cells(domain_size, branching)
    weight = 1.0 / len(cells_per_level)
    types = np.arange(domain_size)
    components = []
    width = 1
    for num_cells in cells_per_level:
        base = randomized_response(num_cells, epsilon).probabilities
        components.append((weight, base[:, types // width]))
        width *= branching
    return stack_strategies(components, epsilon, name="Hierarchical")
