"""Span tracing for the ingest path.

Trace IDs are minted at the HTTP edge (16 hex characters) and propagated
with the work they describe: inside JSON bodies (``"trace"`` key), inside
binary frames (a reserved header field — absent traces leave the frame
byte-identical to the pre-telemetry encoding), and across worker pipes.
Each processing stage opens a child span; finished spans record their
duration into the registry histogram ``repro_span_duration_seconds``
(labeled by span name) and land in a bounded ring buffer for
introspection, so one report batch yields a parent span with
dispatch/decode/fold child timings.

Tracing never feeds back into estimate math; a disabled tracer costs one
attribute check per would-be span.
"""

from __future__ import annotations

import binascii
import os
import time
from collections import deque
from dataclasses import dataclass, field

from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry

__all__ = ["Span", "Tracer", "mint_trace_id", "is_trace_id"]

_TRACE_ID_BYTES = 8
TRACE_ID_LENGTH = 2 * _TRACE_ID_BYTES


def mint_trace_id() -> str:
    """A fresh 16-hex-character trace id from OS entropy.

    Deliberately independent of every seeded RNG in the library, so
    minting traces can never perturb seeded estimate streams.
    """
    return binascii.hexlify(os.urandom(_TRACE_ID_BYTES)).decode("ascii")


def is_trace_id(value: object) -> bool:
    """True when ``value`` looks like a minted trace id."""
    if not isinstance(value, str) or len(value) != TRACE_ID_LENGTH:
        return False
    try:
        binascii.unhexlify(value)
    except (binascii.Error, ValueError):
        return False
    return True


@dataclass(frozen=True)
class Span:
    """One finished span: a named, timed stage of a traced operation."""

    trace_id: str
    name: str
    parent: str | None
    duration_seconds: float
    attributes: dict[str, object] = field(default_factory=dict)

    def to_json(self) -> dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "parent": self.parent,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
        }


class _ActiveSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "trace_id", "name", "parent", "attributes", "_start")

    def __init__(
        self,
        tracer: Tracer,
        trace_id: str,
        name: str,
        parent: str | None,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.name = name
        self.parent = parent
        self.attributes: dict[str, object] = {}
        self._start = 0.0

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def child(self, name: str) -> _ActiveSpan | _NullSpan:
        return self._tracer.span(name, trace_id=self.trace_id, parent=self.name)

    def __enter__(self) -> _ActiveSpan:
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attributes["error"] = True
        self._tracer._finish(
            Span(self.trace_id, self.name, self.parent, duration, self.attributes)
        )


class _NullSpan:
    """No-op stand-in returned by a disabled tracer."""

    __slots__ = ()
    trace_id = ""
    name = ""
    parent = None

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def child(self, name: str) -> _NullSpan:
        return self

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Mints spans, records their durations, keeps a bounded recent ring.

    All state is process-local; worker processes run their own tracer
    and only the trace *id* crosses the pipe, so span timings always
    describe the process that did the work.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        enabled: bool = True,
        max_finished: int = 512,
    ) -> None:
        self.enabled = enabled
        self._finished: deque[Span] = deque(maxlen=max_finished)
        self._histogram = None
        if registry is not None:
            self._histogram = registry.histogram(
                "repro_span_duration_seconds",
                "Duration of traced spans by span name.",
                labelnames=("span",),
                bounds=DEFAULT_LATENCY_BUCKETS,
            )

    def span(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent: str | None = None,
    ) -> _ActiveSpan | _NullSpan:
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, trace_id or mint_trace_id(), name, parent)

    def record(
        self,
        name: str,
        duration_seconds: float,
        *,
        trace_id: str | None = None,
        parent: str | None = None,
        **attributes: object,
    ) -> None:
        """Record an already-measured duration as a finished span.

        For hot paths that time themselves with ``perf_counter`` and only
        want the span bookkeeping afterwards (e.g. the ingest fold loop).
        """
        if not self.enabled:
            return
        self._finish(
            Span(
                trace_id or mint_trace_id(),
                name,
                parent,
                duration_seconds,
                dict(attributes),
            )
        )

    def _finish(self, span: Span) -> None:
        self._finished.append(span)
        if self._histogram is not None:
            child = self._histogram.labels(span.name)
            assert isinstance(child, Histogram)
            child.observe(span.duration_seconds)

    def recent(self, limit: int = 50) -> list[Span]:
        """Most recently finished spans, newest last."""
        spans = list(self._finished)
        return spans[-limit:]

    def trace(self, trace_id: str) -> list[Span]:
        """Finished spans belonging to one trace, in finish order."""
        return [s for s in self._finished if s.trace_id == trace_id]
