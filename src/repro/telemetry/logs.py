"""Structured logging for the service: stdlib ``logging``, two renderers.

``configure_logging("json")`` emits one JSON object per line — machine
parseable, trace-id correlated — while ``"text"`` keeps the classic
human format.  Both run on the root ``repro`` logger so every module
logs through ``get_logger(__name__)`` with zero extra setup.

Extra context rides on ``logging``'s standard ``extra=`` mechanism:

>>> import io, logging
>>> stream = io.StringIO()
>>> _ = configure_logging("json", stream=stream, level=logging.INFO)
>>> log = get_logger("repro.doctest")
>>> log.info("folded batch", extra={"trace_id": "00ff" * 4, "reports": 3})
>>> import json as _json
>>> record = _json.loads(stream.getvalue())
>>> record["message"], record["trace_id"], record["reports"]
('folded batch', '00ff00ff00ff00ff', 3)
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

__all__ = ["JsonFormatter", "configure_logging", "get_logger"]

ROOT_LOGGER_NAME = "repro"

# logging.LogRecord attributes that are plumbing, not user context.
_RESERVED_RECORD_KEYS = frozenset(
    {
        "args",
        "asctime",
        "created",
        "exc_info",
        "exc_text",
        "filename",
        "funcName",
        "levelname",
        "levelno",
        "lineno",
        "message",
        "module",
        "msecs",
        "msg",
        "name",
        "pathname",
        "process",
        "processName",
        "relativeCreated",
        "stack_info",
        "taskName",
        "thread",
        "threadName",
    }
)


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message + extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED_RECORD_KEYS or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False)


class TextFormatter(logging.Formatter):
    """Human format that still appends any extra context fields."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)-7s %(name)s %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        extras = [
            f"{key}={value}"
            for key, value in record.__dict__.items()
            if key not in _RESERVED_RECORD_KEYS
        ]
        if extras:
            return base + " [" + " ".join(sorted(extras)) + "]"
        return base


def configure_logging(
    log_format: str = "text",
    *,
    level: int = logging.INFO,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree and return its root.

    Idempotent: the previous handler is replaced, not stacked, so tests
    and repeated CLI invocations never double-log.  Logs go to stderr by
    default, keeping stdout clean for CLI/JSON output.
    """
    if log_format not in ("text", "json"):
        raise ValueError(f"log_format must be 'text' or 'json', got {log_format!r}")
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if log_format == "json" else TextFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (``repro.service.server`` etc.)."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(ROOT_LOGGER_NAME + "." + name)
