"""Lock-cheap in-process metrics: counters, gauges, latency histograms.

The registry is the single source of truth for operational metrics across
the service (HTTP edge, ingest pipeline, worker pool, checkpoints,
campaign round transitions) and the optimizer drivers.  Design goals, in
order:

1. **Cheap on the hot path.**  An increment or observation is a couple of
   attribute writes — no locks are taken.  The service mutates metrics
   from a single asyncio event loop (and worker processes each own a
   private registry), so updates are single-writer by construction;
   under the GIL a concurrent reader can at worst see a value that is a
   few updates stale, never a torn one.
2. **Mergeable.**  Histograms share fixed bucket bounds, so merging two
   snapshots is element-wise addition — commutative and associative,
   which makes cross-worker aggregation order-independent.
3. **Exact quantile read-out.**  `Histogram.quantile` computes the
   bucket bracketing the requested rank from the exact cumulative
   counts; p50/p95/p99 are deterministic functions of the recorded
   observations, not sampled estimates.

Nothing here ever touches estimate math: telemetry is observation only.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "render_prometheus",
]

# Upper bounds (seconds) for latency histograms: 100us .. 10s, log-spaced.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _validate_name(name: str) -> str:
    if not name or not all(ch.isalnum() or ch in "_:" for ch in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class _Metric:
    """Base for a single sample stream (one label combination)."""

    __slots__ = ("labels",)

    def __init__(self, labels: tuple[tuple[str, str], ...]) -> None:
        self.labels = labels


class Counter(_Metric):
    """Monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, labels: tuple[tuple[str, str], ...] = ()) -> None:
        super().__init__(labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Metric):
    """Point-in-time value; optionally backed by a callback sampled on read."""

    __slots__ = ("_value", "_fn")

    def __init__(self, labels: tuple[tuple[str, str], ...] = ()) -> None:
        super().__init__(labels)
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Sample ``fn`` at read time instead of storing a value."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram(_Metric):
    """Fixed-bucket histogram with exact rank-based quantile read-out.

    Buckets are cumulative-upper-bound style (Prometheus ``le``
    semantics): ``counts[i]`` holds the number of observations ``<=
    bounds[i]``, with one implicit +Inf bucket at the end.  Because the
    bounds are fixed at construction, two histograms with the same
    bounds merge by element-wise addition — the merge is commutative and
    associative, so cross-worker aggregation is order-independent.

    >>> h = Histogram(bounds=(1.0, 2.0, 4.0))
    >>> for v in (0.5, 1.5, 1.5, 3.0):
    ...     h.observe(v)
    >>> h.count, h.quantile(0.5), h.quantile(0.99)
    (4, 2.0, 4.0)
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(
        self,
        labels: tuple[tuple[str, str], ...] = (),
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(labels)
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be distinct and ascending")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("the +Inf bucket is implicit; pass finite bounds")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot = +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        # Linear scan: bucket lists are short (<=17 entries) and the scan
        # stays allocation-free, which beats bisect for this size.
        idx = 0
        bounds = self.bounds
        while idx < len(bounds) and value > bounds[idx]:
            idx += 1
        self._counts[idx] += 1
        self._sum += value
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-rank observation.

        Exact with respect to the recorded bucket counts: the returned
        bound is the smallest bucket edge ``b`` such that at least
        ``ceil(q * count)`` observations were ``<= b``.  Returns ``nan``
        when empty; observations beyond the last finite bound report the
        recorded maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self._count))
        cumulative = 0
        for idx, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if idx < len(self.bounds):
                    return self.bounds[idx]
                return self._max
        return self._max  # pragma: no cover - cumulative always reaches count

    def percentiles(self) -> dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def snapshot(self) -> dict[str, object]:
        """Serializable state for cross-process merging."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
            "min": None if self._count == 0 else self._min,
            "max": None if self._count == 0 else self._max,
        }

    def merge_snapshot(self, snap: Mapping[str, object]) -> None:
        """Fold another histogram's snapshot into this one (element-wise)."""
        bounds = tuple(float(b) for b in snap["bounds"])  # type: ignore[union-attr]
        if bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        counts = snap["counts"]
        for idx, c in enumerate(counts):  # type: ignore[arg-type]
            self._counts[idx] += int(c)
        self._sum += float(snap["sum"])  # type: ignore[arg-type]
        self._count += int(snap["count"])  # type: ignore[arg-type]
        if snap.get("min") is not None:
            self._min = min(self._min, float(snap["min"]))  # type: ignore[arg-type]
        if snap.get("max") is not None:
            self._max = max(self._max, float(snap["max"]))  # type: ignore[arg-type]

    def cumulative_counts(self) -> list[int]:
        out = []
        total = 0
        for c in self._counts:
            total += c
            out.append(total)
        return out


class _Family:
    """A named metric family: one or more label-addressed children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: tuple[str, ...],
        bounds: Sequence[float] | None = None,
    ) -> None:
        self.name = _validate_name(name)
        self.help_text = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.bounds = bounds
        self._children: dict[tuple[str, ...], _Metric] = {}
        self._lock = threading.Lock()

    def _make(self, labelvalues: tuple[str, ...]) -> _Metric:
        labels = tuple(zip(self.labelnames, labelvalues))
        if self.kind == "counter":
            return Counter(labels)
        if self.kind == "gauge":
            return Gauge(labels)
        return Histogram(labels, bounds=self.bounds or DEFAULT_LATENCY_BUCKETS)

    def labels(self, *values: object, **kwargs: object) -> _Metric:
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            values = tuple(kwargs[name] for name in self.labelnames)
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {key}"
            )
        child = self._children.get(key)
        if child is None:
            # Child creation is rare; the lock never sits on the hot path.
            with self._lock:
                child = self._children.setdefault(key, self._make(key))
        return child

    def children(self) -> Iterable[_Metric]:
        return list(self._children.values())


class MetricsRegistry:
    """Name → metric family map with idempotent registration.

    ``counter``/``gauge``/``histogram`` return the unlabeled child
    directly when ``labelnames`` is empty (the common case), or the
    family — call ``.labels(...)`` — when labels are declared.
    Re-registering an existing name returns the existing object and
    verifies the kind matches.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        bounds: Sequence[float] | None = None,
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help_text, kind, tuple(labelnames), bounds)
                self._families[name] = family
            elif family.kind != kind or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                    f"{family.labelnames}"
                )
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter | _Family:
        family = self._register(name, help_text, "counter", labelnames)
        if not family.labelnames:
            return family.labels()  # type: ignore[return-value]
        return family

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge | _Family:
        family = self._register(name, help_text, "gauge", labelnames)
        if not family.labelnames:
            return family.labels()  # type: ignore[return-value]
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram | _Family:
        family = self._register(name, help_text, "histogram", labelnames, bounds)
        if not family.labelnames:
            return family.labels()  # type: ignore[return-value]
        return family

    def families(self) -> list[_Family]:
        with self._lock:
            return list(self._families.values())

    def unregister(self, name: str) -> None:
        with self._lock:
            self._families.pop(name, None)

    def reset(self) -> None:
        with self._lock:
            self._families.clear()

    # -- read-out ---------------------------------------------------------

    def to_json(self) -> dict[str, object]:
        """Nested JSON snapshot: name → value / labeled rows / histogram."""
        out: dict[str, object] = {}
        for family in self.families():
            rows = []
            for child in family.children():
                if isinstance(child, Histogram):
                    value: object = {
                        "count": child.count,
                        "sum": child.sum,
                        **child.percentiles(),
                    }
                else:
                    value = child.value  # type: ignore[union-attr]
                if family.labelnames:
                    rows.append({"labels": dict(child.labels), "value": value})
                else:
                    out[family.name] = value
            if family.labelnames:
                out[family.name] = rows
        return out

    def render_prometheus(self) -> str:
        return render_prometheus(self)


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry.

    The server, optimizer drivers, and checkpoint store register here
    unless handed an explicit registry; worker processes each get their
    own fresh instance so snapshots merge cleanly at the coordinator.
    """
    return _DEFAULT_REGISTRY


def _fmt_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Render one or more registries in the Prometheus text exposition
    format.

    Counters get a ``_total``-as-written name (families are expected to
    already follow naming conventions), histograms expand into
    ``_bucket``/``_sum``/``_count`` series with cumulative ``le``
    labels, and every family carries ``# HELP`` / ``# TYPE`` headers.
    With several registries, a family name appearing in more than one is
    rendered from the first registry that defines it — exposing the same
    family twice would be malformed exposition.
    """
    families: dict[str, _Family] = {}
    for registry in registries:
        for family in registry.families():
            families.setdefault(family.name, family)
    lines: list[str] = []
    for family in sorted(families.values(), key=lambda f: f.name):
        children = list(family.children())
        if not children:
            continue
        help_text = family.help_text.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for child in children:
            if isinstance(child, Histogram):
                cumulative = child.cumulative_counts()
                for bound, cum in zip(child.bounds, cumulative):
                    labels = child.labels + (("le", _fmt_value(bound)),)
                    lines.append(
                        f"{family.name}_bucket{_label_str(labels)} {cum}"
                    )
                labels = child.labels + (("le", "+Inf"),)
                lines.append(f"{family.name}_bucket{_label_str(labels)} {child.count}")
                lines.append(
                    f"{family.name}_sum{_label_str(child.labels)} "
                    f"{_fmt_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{_label_str(child.labels)} {child.count}")
            else:
                value = child.value  # type: ignore[union-attr]
                lines.append(
                    f"{family.name}{_label_str(child.labels)} {_fmt_value(value)}"
                )
    return "\n".join(lines) + "\n"
