"""End-to-end telemetry: metrics registry, span tracing, structured logs.

Three small, dependency-free modules:

* :mod:`repro.telemetry.metrics` — lock-cheap counters/gauges/histograms
  with exact quantile read-out, mergeable across processes, rendered as
  JSON or Prometheus text exposition;
* :mod:`repro.telemetry.tracing` — trace IDs minted at the HTTP edge and
  carried through JSON bodies, binary frames, and worker pipes; spans
  record per-stage timings into the registry;
* :mod:`repro.telemetry.logs` — stdlib ``logging`` with a structured
  JSON renderer and trace-id correlation.

See ``docs/observability.md`` for the metric catalog and trace anatomy.
"""

from .logs import JsonFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)
from .tracing import Span, Tracer, is_trace_id, mint_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "render_prometheus",
    "Span",
    "Tracer",
    "mint_trace_id",
    "is_trace_id",
    "JsonFormatter",
    "configure_logging",
    "get_logger",
]
