"""Tests for repro.linalg.checks."""

import numpy as np

from repro.linalg import (
    is_column_stochastic,
    is_ldp_matrix,
    ldp_ratio,
    max_abs_column_sum_error,
)


class TestColumnSums:
    def test_exact_stochastic(self):
        matrix = np.array([[0.25, 0.5], [0.75, 0.5]])
        assert max_abs_column_sum_error(matrix) == 0.0
        assert is_column_stochastic(matrix)

    def test_sum_error_reported(self):
        matrix = np.array([[0.3], [0.6]])
        assert np.isclose(max_abs_column_sum_error(matrix), 0.1)
        assert not is_column_stochastic(matrix)

    def test_negative_entry_rejected(self):
        matrix = np.array([[1.1], [-0.1]])
        assert not is_column_stochastic(matrix)

    def test_tolerance_respected(self):
        matrix = np.array([[0.5 + 5e-9], [0.5]])
        assert is_column_stochastic(matrix, atol=1e-8)
        assert not is_column_stochastic(matrix, atol=1e-10)


class TestLdpRatio:
    def test_uniform_matrix_ratio_one(self):
        assert ldp_ratio(np.full((3, 4), 0.25)) == 1.0

    def test_randomized_response_ratio(self):
        epsilon = 1.3
        boost = np.exp(epsilon)
        matrix = np.full((4, 4), 1.0)
        np.fill_diagonal(matrix, boost)
        matrix /= boost + 3
        assert np.isclose(ldp_ratio(matrix), boost)

    def test_zero_rows_ignored(self):
        matrix = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert ldp_ratio(matrix) == 1.0

    def test_mixed_zero_row_infinite(self):
        matrix = np.array([[0.0, 0.5], [1.0, 0.5]])
        assert ldp_ratio(matrix) == np.inf

    def test_all_zero_matrix(self):
        assert ldp_ratio(np.zeros((2, 2))) == 1.0


class TestIsLdpMatrix:
    def test_satisfied(self):
        matrix = np.array([[0.6, 0.4], [0.4, 0.6]])
        assert is_ldp_matrix(matrix, epsilon=np.log(1.5))

    def test_violated(self):
        matrix = np.array([[0.9, 0.1], [0.1, 0.9]])
        assert not is_ldp_matrix(matrix, epsilon=np.log(2.0))

    def test_relative_slack(self):
        ratio = np.exp(1.0) * (1 + 1e-10)
        matrix = np.array([[ratio, 1.0], [1.0, ratio]])
        matrix /= matrix.sum(axis=0)
        assert is_ldp_matrix(matrix, epsilon=1.0, rtol=1e-8)
        assert not is_ldp_matrix(matrix, epsilon=1.0, rtol=1e-12)
