"""Tests for repro.linalg.hadamard."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DomainError
from repro.linalg import fwht, hadamard_matrix, next_power_of_two


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "value,expected",
        [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (9, 16), (513, 1024)],
    )
    def test_values(self, value, expected):
        assert next_power_of_two(value) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(DomainError):
            next_power_of_two(0)


class TestHadamardMatrix:
    def test_order_one(self):
        assert np.array_equal(hadamard_matrix(1), [[1.0]])

    def test_order_two(self):
        assert np.array_equal(hadamard_matrix(2), [[1.0, 1.0], [1.0, -1.0]])

    def test_sylvester_recursion(self):
        h4 = hadamard_matrix(4)
        h2 = hadamard_matrix(2)
        expected = np.block([[h2, h2], [h2, -h2]])
        assert np.array_equal(h4, expected)

    @pytest.mark.parametrize("order", [2, 4, 8, 16, 32])
    def test_orthogonality(self, order):
        h = hadamard_matrix(order)
        assert np.allclose(h @ h.T, order * np.eye(order))

    @pytest.mark.parametrize("order", [4, 8, 16])
    def test_balanced_columns(self, order):
        h = hadamard_matrix(order)
        # Every column except the first has exactly order/2 positive entries.
        positives = (h > 0).sum(axis=0)
        assert positives[0] == order
        assert np.all(positives[1:] == order // 2)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(DomainError):
            hadamard_matrix(6)


class TestFwht:
    @pytest.mark.parametrize("order", [1, 2, 4, 8, 16, 64])
    def test_matches_matrix_product(self, order):
        generator = np.random.default_rng(order)
        vector = generator.normal(size=order)
        assert np.allclose(fwht(vector), hadamard_matrix(order) @ vector)

    def test_involution_up_to_scale(self):
        vector = np.array([1.0, -2.0, 3.0, 0.5])
        assert np.allclose(fwht(fwht(vector)), 4 * vector)

    def test_2d_input_transforms_columns(self):
        generator = np.random.default_rng(0)
        block = generator.normal(size=(8, 3))
        result = fwht(block)
        for column in range(3):
            assert np.allclose(result[:, column], fwht(block[:, column]))

    def test_does_not_mutate_input(self):
        vector = np.ones(4)
        fwht(vector)
        assert np.array_equal(vector, np.ones(4))

    def test_rejects_bad_length(self):
        with pytest.raises(DomainError):
            fwht(np.ones(3))

    @given(st.integers(min_value=0, max_value=5))
    def test_parseval(self, log_order):
        order = 1 << log_order
        generator = np.random.default_rng(log_order)
        vector = generator.normal(size=order)
        transformed = fwht(vector)
        assert np.isclose(np.sum(transformed**2), order * np.sum(vector**2))
