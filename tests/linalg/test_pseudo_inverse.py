"""Tests for repro.linalg.pseudo_inverse."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg import psd_pinv, psd_solve, symmetrize


def random_psd(size: int, rank: int, seed: int) -> np.ndarray:
    generator = np.random.default_rng(seed)
    factor = generator.normal(size=(size, rank))
    return factor @ factor.T


class TestSymmetrize:
    def test_already_symmetric_unchanged(self):
        matrix = np.array([[2.0, 1.0], [1.0, 3.0]])
        assert np.array_equal(symmetrize(matrix), matrix)

    def test_result_is_symmetric(self):
        matrix = np.arange(9.0).reshape(3, 3)
        result = symmetrize(matrix)
        assert np.array_equal(result, result.T)

    def test_average_of_transposes(self):
        matrix = np.array([[0.0, 2.0], [4.0, 0.0]])
        assert np.allclose(symmetrize(matrix), [[0.0, 3.0], [3.0, 0.0]])


class TestPsdSolve:
    def test_positive_definite_exact(self):
        matrix = random_psd(6, 6, 0) + np.eye(6)
        rhs = np.arange(6.0)
        solution = psd_solve(matrix, rhs)
        assert np.allclose(matrix @ solution, rhs)

    def test_matrix_rhs(self):
        matrix = random_psd(5, 5, 1) + np.eye(5)
        rhs = np.eye(5)
        solution = psd_solve(matrix, rhs)
        assert np.allclose(matrix @ solution, rhs)

    def test_singular_falls_back_to_pinv(self):
        matrix = random_psd(6, 3, 2)
        rhs = matrix @ np.ones(6)  # in the range space
        solution = psd_solve(matrix, rhs)
        assert np.allclose(matrix @ solution, rhs, atol=1e-8)


class TestPsdPinv:
    def test_inverse_of_identity(self):
        assert np.allclose(psd_pinv(np.eye(4)), np.eye(4))

    def test_matches_numpy_pinv_full_rank(self):
        matrix = random_psd(6, 6, 3) + 0.5 * np.eye(6)
        assert np.allclose(psd_pinv(matrix), np.linalg.pinv(matrix))

    def test_matches_numpy_pinv_rank_deficient(self):
        matrix = random_psd(7, 3, 4)
        assert np.allclose(psd_pinv(matrix), np.linalg.pinv(matrix), atol=1e-8)

    def test_penrose_conditions(self):
        matrix = random_psd(6, 4, 5)
        pinv = psd_pinv(matrix)
        assert np.allclose(matrix @ pinv @ matrix, matrix, atol=1e-8)
        assert np.allclose(pinv @ matrix @ pinv, pinv, atol=1e-8)
        assert np.allclose((matrix @ pinv).T, matrix @ pinv, atol=1e-8)

    def test_zero_matrix(self):
        assert np.array_equal(psd_pinv(np.zeros((3, 3))), np.zeros((3, 3)))

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=1000))
    def test_result_is_psd(self, size, seed):
        matrix = random_psd(size, max(1, size // 2), seed)
        eigenvalues = np.linalg.eigvalsh(psd_pinv(matrix))
        assert eigenvalues.min() >= -1e-9
