"""Tests for repro.linalg.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg.bits import popcount, subsets_of_size


class TestPopcount:
    def test_known_values(self):
        assert np.array_equal(popcount(np.array([0, 1, 2, 3, 255])), [0, 1, 1, 2, 8])

    def test_preserves_shape(self):
        values = np.arange(16).reshape(4, 4)
        assert popcount(values).shape == (4, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(np.array([-1]))

    @given(st.integers(min_value=0, max_value=2**40))
    def test_matches_python_bit_count(self, value):
        assert popcount(np.array([value]))[0] == value.bit_count()


class TestSubsetsOfSize:
    def test_counts(self):
        assert len(subsets_of_size(5, 2)) == 10
        assert len(subsets_of_size(4, 4)) == 1
        assert subsets_of_size(3, 0) == [0]

    def test_all_have_requested_popcount(self):
        for mask in subsets_of_size(6, 3):
            assert bin(mask).count("1") == 3

    def test_masks_unique_and_within_range(self):
        masks = subsets_of_size(5, 2)
        assert len(set(masks)) == len(masks)
        assert all(0 <= mask < 32 for mask in masks)
