"""Multi-restart driver: determinism, dominance, store integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optimization import (
    OptimizedMechanism,
    OptimizerConfig,
    multi_restart_optimize,
    optimize_strategy,
    restart_seeds,
)
from repro.store import StrategyStore
from repro.workloads import histogram, prefix

CONFIG = OptimizerConfig(num_iterations=50, seed=0)


@pytest.fixture
def store(tmp_path) -> StrategyStore:
    return StrategyStore(tmp_path / "strategies")


class TestRestartSchedule:
    def test_first_seed_is_the_base_seed(self):
        assert restart_seeds(17, 4)[0] == 17

    def test_deterministic_and_distinct(self):
        schedule = restart_seeds(0, 8)
        assert schedule == restart_seeds(0, 8)
        assert len(set(schedule)) == 8

    def test_none_seed_spawns_fresh_entropy(self):
        assert restart_seeds(None, 3) == [None, None, None]

    def test_invalid_count(self):
        with pytest.raises(OptimizationError):
            restart_seeds(0, 0)


class TestDeterminism:
    def test_fixed_seed_bit_identical(self):
        a = multi_restart_optimize(prefix(8), 1.0, CONFIG, restarts=3)
        b = multi_restart_optimize(prefix(8), 1.0, CONFIG, restarts=3)
        assert a.objectives == b.objectives
        assert a.best_index == b.best_index
        assert np.array_equal(
            a.result.strategy.probabilities, b.result.strategy.probabilities
        )

    def test_process_backend_matches_serial(self):
        config = OptimizerConfig(num_iterations=25, seed=3)
        serial = multi_restart_optimize(
            prefix(8), 1.0, config, restarts=2, backend="serial"
        )
        process = multi_restart_optimize(
            prefix(8), 1.0, config, restarts=2, backend="process"
        )
        assert serial.objectives == process.objectives
        assert np.array_equal(
            serial.result.strategy.probabilities,
            process.result.strategy.probabilities,
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(OptimizationError, match="backend"):
            multi_restart_optimize(prefix(8), 1.0, CONFIG, backend="fleet")

    def test_shared_memory_gram_round_trip(self):
        # The process backend publishes the Gram through shared memory;
        # workers must see exactly the parent's matrix (dtype, layout,
        # values), so the restart results cannot depend on the transport.
        from repro.optimization.restarts import _run_process_backend

        gram = prefix(6).gram()
        config = OptimizerConfig(num_iterations=15, seed=5)
        results = _run_process_backend(gram, 1.0, [config], max_workers=1)
        direct = optimize_strategy(gram, 1.0, config)
        assert len(results) == 1
        assert results[0] is not None
        assert results[0].objective == pytest.approx(direct.objective)
        assert np.array_equal(
            results[0].strategy.probabilities, direct.strategy.probabilities
        )

    def test_pickle_fallback_matches_shared_memory(self, monkeypatch):
        # Platforms without shared memory fall back to pickling the Gram;
        # both transports must produce the same restarts.
        import multiprocessing.shared_memory as shm_module

        def broken_shared_memory(*args, **kwargs):
            raise OSError("no shared memory on this platform")

        config = OptimizerConfig(num_iterations=15, seed=6)
        shared = multi_restart_optimize(
            prefix(6), 1.0, config, restarts=2, backend="process"
        )
        monkeypatch.setattr(shm_module, "SharedMemory", broken_shared_memory)
        pickled = multi_restart_optimize(
            prefix(6), 1.0, config, restarts=2, backend="process"
        )
        assert shared.objectives == pickled.objectives
        assert np.array_equal(
            shared.result.strategy.probabilities,
            pickled.result.strategy.probabilities,
        )


class TestDominance:
    @pytest.mark.parametrize("workload", [histogram(8), prefix(8)])
    def test_multi_restart_never_worse_than_single(self, workload):
        single = optimize_strategy(workload, 1.0, CONFIG)
        multi = multi_restart_optimize(workload, 1.0, CONFIG, restarts=4)
        assert multi.objective <= single.objective * (1.0 + 1e-12)
        # Restart 0 IS the single run, so equality holds when it wins.
        assert multi.objectives[0] == pytest.approx(single.objective)

    def test_winner_is_argmin(self):
        report = multi_restart_optimize(prefix(8), 1.0, CONFIG, restarts=4)
        assert report.objective == min(report.objectives)
        assert report.best_index == int(np.argmin(report.objectives))


class TestStoreIntegration:
    def test_exact_hit_skips_pgd(self, store, monkeypatch):
        first = multi_restart_optimize(
            prefix(8), 1.0, CONFIG, restarts=2, store=store
        )
        assert not first.store_hit

        def forbidden(*args, **kwargs):  # pragma: no cover
            raise AssertionError("PGD ran despite a store hit")

        import repro.optimization.restarts as restarts_module

        monkeypatch.setattr(restarts_module, "optimize_strategy", forbidden)
        second = multi_restart_optimize(
            prefix(8), 1.0, CONFIG, restarts=2, store=store
        )
        assert second.store_hit
        assert second.objectives == []
        assert np.array_equal(
            second.result.strategy.probabilities,
            first.result.strategy.probabilities,
        )

    def test_restart_count_is_part_of_the_key(self, store):
        multi_restart_optimize(prefix(8), 1.0, CONFIG, restarts=1, store=store)
        report = multi_restart_optimize(
            prefix(8), 1.0, CONFIG, restarts=2, store=store
        )
        assert not report.store_hit
        assert len(store) == 2

    def test_warm_start_from_nearby_epsilon(self, store):
        multi_restart_optimize(prefix(8), 1.0, CONFIG, restarts=1, store=store)
        report = multi_restart_optimize(
            prefix(8), 1.25, CONFIG, restarts=2, store=store
        )
        assert report.warm_started
        assert report.seeds[-1] == "warm"
        assert len(report.objectives) == 3  # 2 random + 1 warm

    def test_no_warm_start_beyond_log_ratio(self, store):
        multi_restart_optimize(prefix(8), 0.1, CONFIG, restarts=1, store=store)
        report = multi_restart_optimize(
            prefix(8), 5.0, CONFIG, restarts=1, store=store
        )
        assert not report.warm_started

    def test_write_false_leaves_store_untouched(self, store):
        multi_restart_optimize(
            prefix(8), 1.0, CONFIG, restarts=1, store=store, write=False
        )
        assert len(store) == 0


class TestMechanismReadThrough:
    def test_fresh_instance_hits_store(self, store, monkeypatch):
        mech = OptimizedMechanism(CONFIG, store=store)
        first = mech.strategy_for(prefix(8), 1.0)

        def forbidden(*args, **kwargs):  # pragma: no cover
            raise AssertionError("PGD ran despite a store hit")

        import repro.optimization.restarts as restarts_module

        monkeypatch.setattr(restarts_module, "optimize_strategy", forbidden)
        again = OptimizedMechanism(CONFIG, store=store).strategy_for(
            prefix(8), 1.0
        )
        assert np.array_equal(first.probabilities, again.probabilities)

    def test_config_fingerprint_separates_instances(self, store):
        # The historical collision: same workload name + domain + epsilon
        # but different iteration budgets must not share a cache slot.
        a = OptimizedMechanism(OptimizerConfig(num_iterations=30, seed=0))
        b = OptimizedMechanism(OptimizerConfig(num_iterations=60, seed=0))
        assert a._key(prefix(8), 1.0) != b._key(prefix(8), 1.0)
        # Same config in two instances: keys agree.
        c = OptimizedMechanism(OptimizerConfig(num_iterations=30, seed=0))
        assert a._key(prefix(8), 1.0) == c._key(prefix(8), 1.0)

    def test_floor_flag_separates_store_entries(self, store):
        floored = OptimizedMechanism(CONFIG, floor_baselines=True, store=store)
        raw = OptimizedMechanism(CONFIG, floor_baselines=False, store=store)
        assert (
            floored._store_key(prefix(8), 1.0).entry_id
            != raw._store_key(prefix(8), 1.0).entry_id
        )

    def test_restarts_never_hurt_the_mechanism(self):
        single = OptimizedMechanism(CONFIG)
        multi = OptimizedMechanism(CONFIG, restarts=3)
        workload = prefix(8)
        assert multi.optimization_result(
            workload, 1.0
        ).objective <= single.optimization_result(workload, 1.0).objective * (
            1.0 + 1e-12
        )

    def test_with_seed_preserves_store_settings(self, store):
        mech = OptimizedMechanism(CONFIG, store=store, restarts=3)
        derived = mech.with_seed(9)
        assert derived.store is store
        assert derived.restarts == 3
        assert derived.config.seed == 9


class TestSessionFromStore:
    def test_round_trip_into_protocol_session(self, store):
        from repro.protocol import ProtocolSession

        workload = prefix(8)
        built = multi_restart_optimize(
            workload, 1.0, CONFIG, restarts=1, store=store
        )
        session = ProtocolSession.from_store(store, workload, 1.0)
        assert np.array_equal(
            session.strategy.probabilities,
            built.result.strategy.probabilities,
        )
        result = session.run([20.0] * 8, num_shards=2, seed=0)
        assert result.num_users == 160

    def test_missing_entry_raises_protocol_error(self, store):
        from repro.exceptions import ProtocolError
        from repro.protocol import ProtocolSession

        with pytest.raises(ProtocolError, match="no strategy"):
            ProtocolSession.from_store(store, prefix(8), 1.0)
