"""Tests for the optimization objective and its analytic gradient."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import strategy_objective
from repro.exceptions import OptimizationError
from repro.optimization import initial_bounds, project_columns
from repro.optimization.objective import objective_and_gradient, objective_value
from repro.workloads import histogram, prefix


def feasible(rows, cols, epsilon, seed):
    raw = np.random.default_rng(seed).random((rows, cols))
    return project_columns(raw, initial_bounds(rows, epsilon), epsilon).matrix


class TestObjectiveValue:
    def test_matches_analysis_module(self):
        strategy = feasible(16, 4, 1.0, seed=0)
        gram = prefix(4).gram()
        assert np.isclose(
            objective_value(strategy, gram), strategy_objective(strategy, gram)
        )

    def test_infeasible_rank_reports_infinity(self):
        # A rank-1 strategy cannot answer a full-rank workload.
        strategy = np.full((8, 4), 0.125)
        assert objective_value(strategy, np.eye(4)) == np.inf

    def test_shape_checks(self):
        with pytest.raises(OptimizationError):
            objective_value(np.ones(4), np.eye(2))
        with pytest.raises(OptimizationError):
            objective_value(np.full((4, 2), 0.25), np.eye(3))

    def test_negative_row_sum_rejected(self):
        strategy = np.array([[-0.5, -0.5], [1.5, 1.5]])
        with pytest.raises(OptimizationError):
            objective_value(strategy, np.eye(2))


class TestGradient:
    @settings(max_examples=10)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=6, max_value=20),
        st.floats(min_value=0.3, max_value=2.5),
        st.integers(min_value=0, max_value=1000),
    )
    def test_finite_differences(self, cols, rows, epsilon, seed):
        strategy = feasible(rows, cols, epsilon, seed)
        gram = prefix(cols).gram()
        value, gradient = objective_and_gradient(strategy, gram)
        generator = np.random.default_rng(seed + 1)
        step = 1e-6
        for _ in range(5):
            i = generator.integers(rows)
            j = generator.integers(cols)
            plus = strategy.copy()
            plus[i, j] += step
            minus = strategy.copy()
            minus[i, j] -= step
            finite = (objective_value(plus, gram) - objective_value(minus, gram)) / (
                2 * step
            )
            assert np.isclose(gradient[i, j], finite, rtol=1e-3, atol=1e-5)

    def test_gradient_zero_direction_on_scale_invariance(self):
        # L(Q) is invariant to duplicating an output row with half mass; the
        # gradient must agree along that direction (directional derivative 0).
        strategy = feasible(10, 3, 1.0, seed=3)
        gram = histogram(3).gram()
        doubled = np.vstack([strategy[:1] / 2, strategy[:1] / 2, strategy[1:]])
        assert np.isclose(
            objective_value(strategy, gram), objective_value(doubled, gram)
        )

    def test_value_and_gradient_consistent(self):
        strategy = feasible(12, 4, 1.0, seed=4)
        gram = prefix(4).gram()
        value, _ = objective_and_gradient(strategy, gram)
        assert np.isclose(value, objective_value(strategy, gram))
