"""Tests for hyper-parameter search helpers."""

import numpy as np

from repro.optimization import (
    OptimizerConfig,
    best_of_restarts,
    optimize_strategy,
    sample_complexity_of_result,
    search_num_outputs,
    worst_case_of_result,
)
from repro.workloads import prefix


class TestSearchNumOutputs:
    def test_sweep_covers_grid(self):
        points = search_num_outputs(
            prefix(4),
            1.0,
            output_counts=[8, 16],
            seeds=[0, 1],
            config=OptimizerConfig(num_iterations=40),
        )
        assert len(points) == 4
        assert {point.num_outputs for point in points} == {8, 16}
        assert {point.seed for point in points} == {0, 1}

    def test_metrics_positive(self):
        points = search_num_outputs(
            prefix(4),
            1.0,
            output_counts=[16],
            seeds=[0],
            config=OptimizerConfig(num_iterations=40),
        )
        assert points[0].objective > 0
        assert points[0].worst_case_variance > 0


class TestBestOfRestarts:
    def test_returns_lowest_objective(self):
        config = OptimizerConfig(num_iterations=60)
        seeds = [0, 1, 2]
        best = best_of_restarts(prefix(5), 1.0, seeds, config)
        for seed in seeds:
            from dataclasses import replace

            single = optimize_strategy(prefix(5), 1.0, replace(config, seed=seed))
            assert best.objective <= single.objective + 1e-9


class TestResultMetrics:
    def test_consistency_between_metrics(self):
        workload = prefix(5)
        result = optimize_strategy(workload, 1.0, OptimizerConfig(num_iterations=60, seed=0))
        worst = worst_case_of_result(result, workload)
        samples = sample_complexity_of_result(result, workload, alpha=0.01)
        assert np.isclose(samples, worst / (workload.num_queries * 0.01))
