"""Tests for the OptimizedMechanism wrapper."""

import numpy as np
import pytest

from repro.mechanisms import paper_baselines
from repro.optimization import OptimizedMechanism, OptimizerConfig
from repro.workloads import histogram, parity, prefix


@pytest.fixture
def quick_mechanism() -> OptimizedMechanism:
    return OptimizedMechanism(OptimizerConfig(num_iterations=150, seed=0))


class TestCaching:
    def test_strategy_cached_per_workload(self, quick_mechanism):
        first = quick_mechanism.strategy_for(prefix(6), 1.0)
        second = quick_mechanism.strategy_for(prefix(6), 1.0)
        assert first is second

    def test_different_workloads_different_strategies(self, quick_mechanism):
        a = quick_mechanism.strategy_for(prefix(6), 1.0)
        b = quick_mechanism.strategy_for(histogram(6), 1.0)
        assert a is not b

    def test_reconstruction_cached(self, quick_mechanism):
        first = quick_mechanism.reconstruction_for(prefix(6), 1.0)
        second = quick_mechanism.reconstruction_for(prefix(6), 1.0)
        assert first is second

    def test_same_name_distinct_content_not_conflated(self, quick_mechanism):
        # Two different workloads sharing a name and domain must not reuse
        # each other's cached strategy: the key hashes the Gram matrix.
        from repro.workloads.base import ExplicitWorkload

        impostor = ExplicitWorkload(prefix(6).matrix[::-1] * 2.0, name="Prefix")
        genuine = prefix(6)
        assert genuine.name == impostor.name
        key_a = quick_mechanism._key(genuine, 1.0)
        key_b = quick_mechanism._key(impostor, 1.0)
        assert key_a != key_b

    def test_equal_content_shares_cache_entry(self, quick_mechanism):
        first = quick_mechanism.strategy_for(prefix(6), 1.0)
        second = quick_mechanism.strategy_for(prefix(6), 1.0)
        assert quick_mechanism._key(prefix(6), 1.0) == quick_mechanism._key(
            prefix(6), 1.0
        )
        assert first is second


class TestAdaptivity:
    def test_beats_every_baseline_on_prefix(self, quick_mechanism):
        workload = prefix(16)
        ours = quick_mechanism.sample_complexity(workload, 1.0)
        for baseline in paper_baselines():
            assert ours <= baseline.sample_complexity(workload, 1.0) * 1.001

    def test_matches_rr_at_large_epsilon(self):
        # Section 6.2: at eps >> 1 randomized response is optimal; the
        # baseline floor guarantees we do not do worse.
        mechanism = OptimizedMechanism(OptimizerConfig(num_iterations=100, seed=0))
        workload = parity(4, 3)
        rr = [m for m in paper_baselines() if m.name == "Randomized Response"][0]
        assert (
            mechanism.sample_complexity(workload, 6.0)
            <= rr.sample_complexity(workload, 6.0) * 1.01
        )

    def test_floor_disabled_still_valid(self):
        mechanism = OptimizedMechanism(
            OptimizerConfig(num_iterations=80, seed=0), floor_baselines=False
        )
        strategy = mechanism.strategy_for(prefix(5), 1.0)
        assert strategy.realized_ratio() <= np.e * (1 + 1e-8)

    def test_with_seed_gives_fresh_instance(self, quick_mechanism):
        other = quick_mechanism.with_seed(99)
        assert other is not quick_mechanism
        assert other.config.seed == 99

    def test_run_end_to_end(self, quick_mechanism, rng):
        workload = histogram(4)
        x = np.array([200.0, 100.0, 50.0, 50.0])
        average = np.mean(
            [quick_mechanism.run(workload, x, 2.0, rng) for _ in range(100)], axis=0
        )
        assert np.allclose(average, x, rtol=0.25, atol=15.0)
