"""Tests for Algorithm 1 (bounded-simplex projection) and its backprop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import OptimizationError
from repro.optimization import (
    feasible_bounds,
    initial_bounds,
    project_column_bisection,
    project_columns,
    project_columns_batch,
    projection_vjp,
)


def assert_feasible(matrix, z, epsilon, atol=1e-9):
    lo, hi = z, np.exp(epsilon) * z
    assert np.all(matrix >= lo[:, None] - atol)
    assert np.all(matrix <= hi[:, None] + atol)
    assert np.allclose(matrix.sum(axis=0), 1.0, atol=1e-8)


class TestFeasibleBounds:
    def test_valid(self):
        z = initial_bounds(8, 1.0)
        lo, hi = feasible_bounds(z, 1.0)
        assert np.array_equal(lo, z)
        assert np.allclose(hi, np.e * z)

    def test_rejects_negative_z(self):
        with pytest.raises(OptimizationError):
            feasible_bounds(np.array([-0.1, 0.5]), 1.0)

    def test_rejects_sum_above_one(self):
        with pytest.raises(OptimizationError):
            feasible_bounds(np.full(4, 0.3), 1.0)

    def test_rejects_unreachable_sum(self):
        with pytest.raises(OptimizationError):
            feasible_bounds(np.full(4, 0.01), 1.0)

    def test_rejects_non_vector(self):
        with pytest.raises(OptimizationError):
            feasible_bounds(np.ones((2, 2)) / 8, 1.0)


class TestProjectColumns:
    def test_feasible_point_is_fixed(self):
        epsilon = 1.0
        z = initial_bounds(12, epsilon)
        generator = np.random.default_rng(0)
        state = project_columns(generator.random((12, 4)), z, epsilon)
        again = project_columns(state.matrix, z, epsilon)
        assert np.allclose(state.matrix, again.matrix, atol=1e-10)

    def test_output_always_feasible(self):
        epsilon = 0.7
        z = initial_bounds(10, epsilon)
        generator = np.random.default_rng(1)
        state = project_columns(10 * generator.normal(size=(10, 6)), z, epsilon)
        assert_feasible(state.matrix, z, epsilon)

    def test_matches_bisection_reference(self):
        epsilon = 1.3
        z = initial_bounds(15, epsilon)
        generator = np.random.default_rng(2)
        raw = generator.normal(size=(15, 5))
        state = project_columns(raw, z, epsilon)
        for column in range(5):
            reference = project_column_bisection(raw[:, column], z, epsilon)
            assert np.allclose(state.matrix[:, column], reference, atol=1e-7)

    def test_heterogeneous_bounds(self):
        epsilon = 1.0
        generator = np.random.default_rng(3)
        z = generator.random(12) * 0.05
        z *= 0.8 / z.sum()  # sum(z) = 0.8 <= 1 <= e * 0.8
        raw = generator.normal(size=(12, 3))
        state = project_columns(raw, z, epsilon)
        assert_feasible(state.matrix, z, epsilon)
        for column in range(3):
            reference = project_column_bisection(raw[:, column], z, epsilon)
            assert np.allclose(state.matrix[:, column], reference, atol=1e-7)

    def test_zero_bound_rows_stay_zero(self):
        epsilon = 1.0
        z = np.array([0.0, 0.3, 0.3])
        raw = np.array([[5.0], [0.2], [0.1]])
        state = project_columns(raw, z, epsilon)
        assert state.matrix[0, 0] == 0.0
        assert np.isclose(state.matrix[:, 0].sum(), 1.0)

    def test_projection_is_closest_point(self):
        # Verify against a brute-force quadratic program on a tiny instance.
        import scipy.optimize

        epsilon = 1.0
        z = np.array([0.1, 0.15, 0.2])
        raw = np.array([0.9, -0.2, 0.35])
        state = project_columns(raw.reshape(3, 1), z, epsilon)
        result = scipy.optimize.minimize(
            lambda q: np.sum((q - raw) ** 2),
            np.full(3, 1 / 3),
            bounds=list(zip(z, np.e * z)),
            constraints={"type": "eq", "fun": lambda q: q.sum() - 1.0},
        )
        assert np.allclose(state.matrix[:, 0], result.x, atol=1e-6)

    def test_infeasible_raises(self):
        with pytest.raises(OptimizationError):
            project_columns(np.zeros((3, 2)), np.full(3, 0.01), 0.1)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(OptimizationError):
            project_columns(np.zeros((3, 2)), initial_bounds(4, 1.0), 1.0)

    def test_masks_partition_entries(self):
        epsilon = 1.0
        z = initial_bounds(20, epsilon)
        state = project_columns(
            np.random.default_rng(4).normal(size=(20, 5)), z, epsilon
        )
        overlap = state.lower & state.upper
        assert not overlap.any()
        assert np.array_equal(state.free, ~(state.lower | state.upper))

    @settings(max_examples=30)
    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.1, max_value=4.0),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_feasibility_and_idempotence(self, rows, cols, epsilon, seed):
        z = initial_bounds(rows, epsilon)
        generator = np.random.default_rng(seed)
        raw = generator.normal(size=(rows, cols)) * generator.gamma(1.0)
        state = project_columns(raw, z, epsilon)
        assert_feasible(state.matrix, z, epsilon)
        again = project_columns(state.matrix, z, epsilon)
        assert np.allclose(state.matrix, again.matrix, atol=1e-8)


class TestNewtonVsSort:
    """The fast Newton multiplier solver must match the sort sweep exactly."""

    @settings(max_examples=30)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.1, max_value=4.0),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_methods_agree(self, rows, cols, epsilon, seed):
        z = initial_bounds(rows, epsilon)
        generator = np.random.default_rng(seed)
        raw = generator.normal(size=(rows, cols)) * generator.gamma(1.0)
        newton = project_columns(raw, z, epsilon, method="newton")
        sort = project_columns(raw, z, epsilon, method="sort")
        assert np.allclose(newton.matrix, sort.matrix, atol=1e-10)
        assert np.array_equal(newton.lower, sort.lower)
        assert np.array_equal(newton.upper, sort.upper)

    def test_heterogeneous_bounds_agree(self):
        generator = np.random.default_rng(6)
        z = generator.random(15) * 0.05
        z *= 0.7 / z.sum()
        raw = generator.normal(size=(15, 4)) * 3.0
        newton = project_columns(raw, z, 1.0, method="newton")
        sort = project_columns(raw, z, 1.0, method="sort")
        assert np.allclose(newton.matrix, sort.matrix, atol=1e-10)

    def test_fully_lower_clipped_column(self):
        # sum(z) == 1 forces every entry to its lower bound.
        z = np.full(5, 0.2)
        raw = np.random.default_rng(7).normal(size=(5, 3))
        newton = project_columns(raw, z, 1.0, method="newton")
        sort = project_columns(raw, z, 1.0, method="sort")
        assert np.allclose(newton.matrix, sort.matrix, atol=1e-12)
        assert np.allclose(newton.matrix, 0.2, atol=1e-9)

    def test_warm_start_changes_nothing(self):
        generator = np.random.default_rng(8)
        z = initial_bounds(20, 1.0)
        raw = generator.normal(size=(20, 6))
        cold = project_columns(raw, z, 1.0, method="newton")
        warm = project_columns(
            raw,
            z,
            1.0,
            method="newton",
            initial_multipliers=cold.multipliers + generator.normal(size=6),
        )
        assert np.allclose(cold.matrix, warm.matrix, atol=1e-10)

    def test_warm_start_length_checked(self):
        z = initial_bounds(6, 1.0)
        raw = np.random.default_rng(9).random((6, 3))
        with pytest.raises(OptimizationError):
            project_columns(raw, z, 1.0, initial_multipliers=np.zeros(4))

    def test_unknown_method_rejected(self):
        z = initial_bounds(6, 1.0)
        raw = np.random.default_rng(10).random((6, 3))
        with pytest.raises(OptimizationError):
            project_columns(raw, z, 1.0, method="bisect")


class TestProjectColumnsBatch:
    def test_batch_matches_single_calls(self):
        generator = np.random.default_rng(11)
        z = initial_bounds(16, 1.0)
        raws = [generator.normal(size=(16, 5)) for _ in range(3)]
        batch = project_columns_batch(raws, z, 1.0)
        for raw, state in zip(raws, batch):
            single = project_columns(raw, z, 1.0)
            # Reduction blocking differs with array width, so agreement is
            # to the ulp, not bit-exact.
            assert np.allclose(state.matrix, single.matrix, atol=1e-12)
            assert np.allclose(
                state.multipliers, single.multipliers, atol=1e-12
            )
            assert np.array_equal(state.lower, single.lower)
            assert np.array_equal(state.upper, single.upper)

    def test_empty_and_singleton_batches(self):
        z = initial_bounds(8, 1.0)
        assert project_columns_batch([], z, 1.0) == []
        raw = np.random.default_rng(12).random((8, 2))
        (state,) = project_columns_batch([raw], z, 1.0)
        assert np.array_equal(state.matrix, project_columns(raw, z, 1.0).matrix)

    def test_mismatched_shapes_rejected(self):
        z = initial_bounds(8, 1.0)
        generator = np.random.default_rng(13)
        with pytest.raises(OptimizationError):
            project_columns_batch(
                [generator.random((8, 2)), generator.random((8, 3))], z, 1.0
            )

    def test_batch_with_warm_start(self):
        generator = np.random.default_rng(14)
        z = initial_bounds(10, 1.0)
        raws = [generator.normal(size=(10, 4)) for _ in range(2)]
        seed_state = project_columns(raws[0], z, 1.0)
        batch = project_columns_batch(
            raws, z, 1.0, initial_multipliers=seed_state.multipliers
        )
        for raw, state in zip(raws, batch):
            assert np.allclose(
                state.matrix, project_columns(raw, z, 1.0).matrix, atol=1e-10
            )


class TestProjectionVjp:
    def test_finite_difference_check(self):
        # Perturb z, re-project the same raw point, compare to the VJP.
        epsilon = 1.0
        rows, cols = 12, 4
        generator = np.random.default_rng(5)
        z = initial_bounds(rows, epsilon) * (1 + 0.1 * generator.random(rows))
        raw = generator.normal(size=(rows, cols)) * 0.2 + 1.0 / rows
        state = project_columns(raw, z, epsilon)
        loss_gradient = generator.normal(size=(rows, cols))
        vjp = projection_vjp(loss_gradient, state, epsilon)
        step = 1e-7
        for index in range(rows):
            shifted = z.copy()
            shifted[index] += step
            plus = project_columns(raw, shifted, epsilon)
            shifted[index] -= 2 * step
            minus = project_columns(raw, shifted, epsilon)
            finite = np.sum(loss_gradient * (plus.matrix - minus.matrix)) / (2 * step)
            assert np.isclose(vjp[index], finite, rtol=1e-4, atol=1e-5)

    def test_shape_check(self):
        epsilon = 1.0
        state = project_columns(
            np.random.default_rng(0).random((6, 3)), initial_bounds(6, epsilon), epsilon
        )
        with pytest.raises(OptimizationError):
            projection_vjp(np.zeros((6, 4)), state, epsilon)

    def test_zero_gradient_gives_zero(self):
        epsilon = 1.0
        state = project_columns(
            np.random.default_rng(1).random((6, 3)), initial_bounds(6, epsilon), epsilon
        )
        assert np.array_equal(projection_vjp(np.zeros((6, 3)), state, epsilon), np.zeros(6))
