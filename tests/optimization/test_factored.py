"""Tests for Kronecker-factorized strategy optimization.

The load-bearing checks: the factored objective/gradient/reconstruction
machinery agrees with the dense path to rtol <= 1e-9 on small product
domains, and the factored path handles >10^6-cell domains the dense path
cannot materialize, with peak allocation far below n^2.
"""

import tempfile
import tracemalloc
from dataclasses import replace
from math import prod

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.mechanisms import FactoredStrategy, randomized_response
from repro.optimization import (
    FactoredOptimizerConfig,
    OptimizerConfig,
    factored_objective_value,
    multi_restart_optimize_factored,
    objective_value,
    optimize_factored_strategy,
    optimize_strategy,
)
from repro.store import StrategyStore, key_for, key_for_factored
from repro.workloads import (
    KronWorkload,
    all_product_marginals,
    k_way_product_marginals,
)

RTOL = 1e-9


def materialized(strategy: FactoredStrategy) -> np.ndarray:
    return strategy.materialize().probabilities


class TestFactoredObjectiveAgreement:
    """factored L == dense L, pinned to rtol <= 1e-9."""

    def test_two_factor_kron(self):
        workload = KronWorkload([np.tril(np.ones((3, 3))), np.eye(4)])
        strategy = FactoredStrategy(
            (randomized_response(3, 0.4), randomized_response(4, 0.6))
        )
        dense = objective_value(materialized(strategy), workload.gram())
        factored = factored_objective_value(strategy.factors, workload)
        assert np.isclose(factored, dense, rtol=RTOL)

    def test_three_factor_marginals(self):
        workload = k_way_product_marginals((3, 2, 4), 2)
        strategy = FactoredStrategy(
            tuple(randomized_response(size, 0.3) for size in (3, 2, 4))
        )
        dense = objective_value(materialized(strategy), workload.gram())
        factored = factored_objective_value(strategy.factors, workload)
        assert np.isclose(factored, dense, rtol=RTOL)

    def test_all_marginals_with_optimized_factors(self):
        workload = all_product_marginals((3, 2, 2))
        result = optimize_factored_strategy(
            workload,
            1.0,
            FactoredOptimizerConfig(
                base=OptimizerConfig(num_iterations=80, seed=0), rounds=1
            ),
        )
        dense = objective_value(
            materialized(result.strategy), workload.gram()
        )
        assert np.isclose(result.objective, dense, rtol=RTOL)

    def test_optimizer_reports_joint_objective(self):
        workload = k_way_product_marginals((3, 3, 2), 2)
        result = optimize_factored_strategy(
            workload,
            1.0,
            FactoredOptimizerConfig(
                base=OptimizerConfig(num_iterations=100, seed=3), rounds=2
            ),
        )
        helper = factored_objective_value(result.strategy.factors, workload)
        assert np.isclose(result.objective, helper, rtol=RTOL)


class TestFactoredGradientAgreement:
    """The per-factor effective-Gram gradient is the true partial gradient
    of the joint objective (checked against central finite differences)."""

    def test_effective_gram_gradient_matches_joint_fd(self):
        from repro.optimization import objective_and_gradient
        from repro.optimization.factored import (
            _factor_block_values,
            _factor_gram_blocks,
        )

        workload = k_way_product_marginals((3, 2, 2), 2)
        rng = np.random.default_rng(7)
        strategies = [
            randomized_response(size, 0.5).probabilities for size in (3, 2, 2)
        ]
        blocks = _factor_gram_blocks(workload)
        target = 0  # differentiate with respect to factor 0
        values = np.array(
            [
                _factor_block_values(matrix, [block[i] for block in blocks])
                for i, matrix in enumerate(strategies)
            ]
        ).T  # (num_blocks, k)
        weights = [
            prod(values[b, j] for j in range(len(strategies)) if j != target)
            for b in range(len(blocks))
        ]
        effective = sum(
            weight * block[target] for weight, block in zip(weights, blocks)
        )
        _, gradient = objective_and_gradient(strategies[target], effective)

        def joint(q0_flat):
            trial = [q0_flat.reshape(strategies[target].shape)] + strategies[1:]
            return factored_objective_value(trial, workload)

        base = strategies[target].ravel()
        step = 1e-6
        rng_indices = rng.choice(base.size, size=5, replace=False)
        for index in rng_indices:
            bumped_up = base.copy()
            bumped_up[index] += step
            bumped_down = base.copy()
            bumped_down[index] -= step
            fd = (joint(bumped_up) - joint(bumped_down)) / (2 * step)
            assert np.isclose(gradient.ravel()[index], fd, rtol=1e-4, atol=1e-4)


class TestFactoredReconstructionAgreement:
    def test_factored_operator_composes_to_dense(self):
        from repro.analysis import (
            factored_reconstruction_operators,
            reconstruction_operator,
        )

        factors = [
            randomized_response(3, 0.4).probabilities,
            randomized_response(2, 0.7).probabilities,
            randomized_response(4, 0.5).probabilities,
        ]
        joint = np.kron(factors[2], np.kron(factors[1], factors[0]))
        operators = factored_reconstruction_operators(factors)
        composed = np.kron(operators[2], np.kron(operators[1], operators[0]))
        dense = reconstruction_operator(joint)
        assert np.allclose(composed, dense, rtol=RTOL, atol=1e-12)

    def test_strategy_reconstruction_operator_matvec(self):
        strategy = FactoredStrategy(
            (randomized_response(3, 0.5), randomized_response(4, 0.5))
        )
        from repro.analysis import reconstruction_operator

        dense = reconstruction_operator(materialized(strategy))
        histogram = np.arange(12, dtype=float)
        assert np.allclose(
            strategy.reconstruction_operator().matvec(histogram),
            dense @ histogram,
            rtol=RTOL,
        )


class TestFactoredOptimizerDriver:
    def test_kron_workload_runs_single_round(self):
        workload = KronWorkload([np.eye(4), np.eye(3)])
        result = optimize_factored_strategy(
            workload,
            1.0,
            FactoredOptimizerConfig(
                base=OptimizerConfig(num_iterations=50, seed=0), rounds=3
            ),
        )
        assert result.rounds_run == 1  # factors decouple; one pass suffices

    def test_epsilon_split_sums_to_budget(self):
        workload = k_way_product_marginals((3, 2, 2), 2)
        result = optimize_factored_strategy(
            workload,
            2.0,
            FactoredOptimizerConfig(
                base=OptimizerConfig(num_iterations=40, seed=0),
                epsilon_split=(2.0, 1.0, 1.0),
                rounds=1,
            ),
        )
        assert result.strategy.epsilon == pytest.approx(2.0)
        assert result.epsilon_split == pytest.approx((0.5, 0.25, 0.25))
        assert result.strategy.factors[0].epsilon == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        workload = k_way_product_marginals((3, 2, 2), 2)
        config = FactoredOptimizerConfig(
            base=OptimizerConfig(num_iterations=40, seed=11), rounds=1
        )
        a = optimize_factored_strategy(workload, 1.0, config)
        b = optimize_factored_strategy(workload, 1.0, config)
        assert a.objective == b.objective
        for left, right in zip(a.strategy.factors, b.strategy.factors):
            assert np.array_equal(left.probabilities, right.probabilities)

    def test_engine_selection_matches(self):
        workload = k_way_product_marginals((3, 2, 2), 2)
        fast = optimize_factored_strategy(
            workload,
            1.0,
            FactoredOptimizerConfig(
                base=OptimizerConfig(num_iterations=40, seed=0, engine="fast"),
                rounds=1,
            ),
        )
        reference = optimize_factored_strategy(
            workload,
            1.0,
            FactoredOptimizerConfig(
                base=OptimizerConfig(
                    num_iterations=40, seed=0, engine="reference"
                ),
                rounds=1,
            ),
        )
        assert np.isclose(fast.objective, reference.objective, rtol=1e-6)

    def test_rejects_ambiguous_base_config(self):
        workload = KronWorkload([np.eye(3), np.eye(2)])
        config = FactoredOptimizerConfig(
            base=OptimizerConfig(num_iterations=10, num_outputs=12)
        )
        with pytest.raises(OptimizationError):
            optimize_factored_strategy(workload, 1.0, config)
        with pytest.raises(OptimizationError):
            optimize_factored_strategy(
                workload,
                1.0,
                FactoredOptimizerConfig(
                    base=OptimizerConfig(num_iterations=10, prior=np.ones(6) / 6)
                ),
            )

    def test_rejects_bad_splits_and_workloads(self):
        from repro.workloads import histogram

        workload = KronWorkload([np.eye(3), np.eye(2)])
        with pytest.raises(OptimizationError):
            optimize_factored_strategy(
                workload,
                1.0,
                FactoredOptimizerConfig(epsilon_split=(1.0,)),
            )
        with pytest.raises(OptimizationError):
            optimize_factored_strategy(
                workload,
                1.0,
                FactoredOptimizerConfig(epsilon_split=(1.0, -1.0)),
            )
        with pytest.raises(OptimizationError):
            optimize_factored_strategy(histogram(6), 1.0)

    def test_factored_tracks_dense_on_single_attribute(self):
        # One factor: the factored driver degenerates to a dense solve of
        # the same problem (the per-factor seed is spawned from the root
        # seed, so the inits differ — compare converged quality, not bits).
        workload = KronWorkload([np.eye(6)])
        config = OptimizerConfig(num_iterations=80, seed=0)
        factored = optimize_factored_strategy(
            workload, 1.0, FactoredOptimizerConfig(base=config)
        )
        dense = optimize_strategy(workload.gram(), 1.0, replace(config))
        assert np.isclose(factored.objective, dense.objective, rtol=0.02)
        # And the reported objective is the true joint objective.
        evaluated = objective_value(
            materialized(factored.strategy), workload.gram()
        )
        assert np.isclose(factored.objective, evaluated, rtol=RTOL)


class TestMultiRestart:
    def test_best_of_k_never_worse(self):
        workload = k_way_product_marginals((3, 2, 2), 2)
        config = FactoredOptimizerConfig(
            base=OptimizerConfig(num_iterations=30, seed=0), rounds=1
        )
        single = multi_restart_optimize_factored(
            workload, 1.0, config, restarts=1
        )
        multi = multi_restart_optimize_factored(
            workload, 1.0, config, restarts=3
        )
        assert multi.objective <= single.objective
        assert multi.best_index == int(np.argmin(multi.objectives))

    def test_store_round_trip_and_hit(self):
        workload = k_way_product_marginals((3, 2, 2), 2)
        config = FactoredOptimizerConfig(
            base=OptimizerConfig(num_iterations=30, seed=0), rounds=1
        )
        store = StrategyStore(tempfile.mkdtemp())
        miss = multi_restart_optimize_factored(
            workload, 1.0, config, restarts=2, store=store
        )
        assert not miss.store_hit
        hit = multi_restart_optimize_factored(
            workload, 1.0, config, restarts=2, store=store
        )
        assert hit.store_hit
        assert hit.objective == miss.objective
        for left, right in zip(
            hit.result.strategy.factors, miss.result.strategy.factors
        ):
            assert np.array_equal(left.probabilities, right.probabilities)

    def test_fingerprints_distinguish_factored_from_dense(self):
        workload = k_way_product_marginals((3, 2, 2), 2)
        config = FactoredOptimizerConfig(
            base=OptimizerConfig(num_iterations=30, seed=0)
        )
        factored_key = key_for_factored(workload, 1.0, config)
        dense_key = key_for(workload.gram(), 1.0, config.base)
        assert factored_key.gram_hash != dense_key.gram_hash
        assert factored_key.entry_id != dense_key.entry_id

    def test_dense_api_refuses_factored_entries(self):
        from repro.exceptions import StoreError

        workload = k_way_product_marginals((3, 2, 2), 2)
        config = FactoredOptimizerConfig(
            base=OptimizerConfig(num_iterations=30, seed=0), rounds=1
        )
        store = StrategyStore(tempfile.mkdtemp())
        multi_restart_optimize_factored(
            workload, 1.0, config, restarts=1, store=store
        )
        key = key_for_factored(workload, 1.0, config, restarts=1)
        record = store.records()[0]
        assert record.kind == "factored"
        assert store.get(key) is None  # dense miss, not an eviction
        assert store.get_factored(key) is not None  # still present
        with pytest.raises(StoreError):
            store.load(record.entry_id)
        assert store.best_for(workload.gram(), 1.0) is None
        assert store.best_factored_for(workload, 1.0) is not None

    def test_process_backend_matches_serial(self):
        workload = k_way_product_marginals((3, 2, 2), 2)
        config = FactoredOptimizerConfig(
            base=OptimizerConfig(num_iterations=25, seed=0), rounds=1
        )
        serial = multi_restart_optimize_factored(
            workload, 1.0, config, restarts=2, backend="serial"
        )
        process = multi_restart_optimize_factored(
            workload, 1.0, config, restarts=2, backend="process", num_workers=2
        )
        assert serial.objectives == process.objectives


class TestMillionCellSmoke:
    """The headline capability: optimize over >10^6 cells without ever
    allocating anything close to n^2 (or even n)."""

    def test_million_cell_domain_stays_factor_sized(self):
        sizes = (64, 64, 16, 16)
        domain_size = prod(sizes)
        assert domain_size > 1_000_000
        workload = k_way_product_marginals(sizes, 2)
        config = FactoredOptimizerConfig(
            base=OptimizerConfig(num_iterations=12, seed=0), rounds=1
        )
        tracemalloc.start()
        result = optimize_factored_strategy(workload, 1.0, config)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.strategy.domain_size == domain_size
        assert np.isfinite(result.objective) and result.objective > 0
        # Peak must be far below one float64 copy of the flat domain
        # (8 MB), let alone the n x n Gram (8 TB).
        assert peak < 4 * domain_size  # < half of one length-n vector
        # And the dense path must refuse this domain outright.
        with pytest.raises(ValueError):
            workload.gram()
