"""Tests for Algorithm 2 (projected gradient descent)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import (
    strategy_objective,
    strategy_objective_lower_bound,
)
from repro.exceptions import OptimizationError
from repro.optimization import (
    OptimizerConfig,
    initial_bounds,
    initialize,
    optimize_strategy,
)
from repro.optimization.pgd import _repair_bounds, warm_start
from repro.mechanisms import randomized_response
from repro.workloads import histogram, parity, prefix


class TestInitialization:
    def test_paper_initial_bounds(self):
        # z = (1 + e^-eps) / (2m), the paper's (1 + e^-eps)/(8n) at m = 4n.
        bounds = initial_bounds(32, 1.0)
        assert np.allclose(bounds, (1 + np.exp(-1.0)) / 64)

    def test_initialize_produces_feasible_strategy(self, rng):
        state, bounds = initialize(6, 24, 1.0, rng)
        assert state.matrix.shape == (24, 6)
        assert np.allclose(state.matrix.sum(axis=0), 1.0, atol=1e-8)

    def test_warm_start_close_to_original(self):
        strategy = randomized_response(6, 1.0).probabilities
        state, _ = warm_start(strategy, 1.0)
        assert np.allclose(state.matrix, strategy, atol=2e-3)


class TestRepairBounds:
    def test_noop_when_feasible(self):
        bounds = initial_bounds(8, 1.0)
        assert np.allclose(_repair_bounds(bounds, 1.0), bounds)

    def test_rescales_oversized(self):
        bounds = _repair_bounds(np.full(8, 0.5), 1.0)
        assert bounds.sum() <= 1.0

    def test_rescues_undersized(self):
        bounds = _repair_bounds(np.full(8, 1e-9), 1.0)
        assert np.exp(1.0) * bounds.sum() >= 1.0

    def test_recovers_from_collapse(self):
        bounds = _repair_bounds(np.zeros(8), 1.0)
        assert bounds.sum() > 0


class TestOptimizeStrategy:
    def test_output_is_valid_ldp_strategy(self):
        result = optimize_strategy(prefix(6), 1.0, OptimizerConfig(num_iterations=50, seed=0))
        strategy = result.strategy
        assert strategy.epsilon == 1.0
        assert strategy.realized_ratio() <= np.e * (1 + 1e-8)
        assert np.allclose(strategy.probabilities.sum(axis=0), 1.0, atol=1e-7)

    def test_objective_matches_returned_strategy(self):
        result = optimize_strategy(prefix(5), 1.0, OptimizerConfig(num_iterations=60, seed=1))
        recomputed = strategy_objective(result.strategy.probabilities, prefix(5).gram())
        assert np.isclose(result.objective, recomputed, rtol=1e-8)

    def test_improves_over_initialization(self, rng):
        workload = prefix(6)
        state, _ = initialize(6, 24, 1.0, np.random.default_rng(0))
        start_value = strategy_objective(state.matrix, workload.gram())
        result = optimize_strategy(workload, 1.0, OptimizerConfig(num_iterations=100, seed=0))
        assert result.objective < start_value

    def test_respects_lower_bound(self):
        for epsilon in (0.5, 1.0, 2.0):
            result = optimize_strategy(
                histogram(6), epsilon, OptimizerConfig(num_iterations=100, seed=0)
            )
            bound = strategy_objective_lower_bound(histogram(6), epsilon)
            assert result.objective >= bound * (1 - 1e-9)

    def test_accepts_raw_gram(self):
        result = optimize_strategy(np.eye(5), 1.0, OptimizerConfig(num_iterations=30, seed=0))
        assert result.strategy.domain_size == 5

    def test_rejects_bad_gram_shape(self):
        with pytest.raises(OptimizationError):
            optimize_strategy(np.ones((3, 4)), 1.0)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(OptimizationError):
            optimize_strategy(histogram(4), 0.0)

    def test_custom_num_outputs(self):
        result = optimize_strategy(
            prefix(4), 1.0, OptimizerConfig(num_iterations=30, seed=0, num_outputs=10)
        )
        assert result.strategy.num_outputs == 10

    def test_low_rank_strategy_for_low_rank_workload(self):
        # Parity is low rank; m < n strategies are allowed and feasible.
        workload = parity(3, 1)  # rank 3 over n = 8
        result = optimize_strategy(
            workload, 1.0, OptimizerConfig(num_iterations=60, seed=0, num_outputs=8)
        )
        assert np.isfinite(result.objective)

    def test_history_tracking(self):
        result = optimize_strategy(
            prefix(4),
            1.0,
            OptimizerConfig(num_iterations=40, seed=0, track_history=True),
        )
        assert len(result.history) == result.iterations_run
        finite = [v for v in result.history if np.isfinite(v)]
        assert finite[-1] <= finite[0]

    def test_deterministic_given_seed(self):
        config = OptimizerConfig(num_iterations=40, seed=42)
        first = optimize_strategy(prefix(4), 1.0, config)
        second = optimize_strategy(prefix(4), 1.0, config)
        assert np.array_equal(
            first.strategy.probabilities, second.strategy.probabilities
        )

    def test_fixed_step_mode_runs(self):
        # The paper-faithful loop (no line search) with an explicit step.
        result = optimize_strategy(
            prefix(4),
            1.0,
            OptimizerConfig(
                num_iterations=60, seed=0, line_search=False, step_size=1e-4
            ),
        )
        assert np.isfinite(result.objective)

    def test_fixed_step_mode_with_search(self):
        result = optimize_strategy(
            prefix(4),
            1.0,
            OptimizerConfig(
                num_iterations=40,
                seed=0,
                line_search=False,
                search_points=3,
                search_iterations=10,
            ),
        )
        assert np.isfinite(result.objective)

    def test_unknown_engine_rejected(self):
        with pytest.raises(OptimizationError):
            optimize_strategy(
                histogram(4), 1.0, OptimizerConfig(engine="autograd")
            )

    def test_warm_start_from_baseline(self):
        baseline = randomized_response(5, 1.0)
        result = optimize_strategy(
            histogram(5),
            1.0,
            OptimizerConfig(num_iterations=40, initial_strategy=baseline.probabilities),
        )
        base_value = strategy_objective(baseline.probabilities, np.eye(5))
        # Never meaningfully worse than the seeding mechanism.
        assert result.objective <= base_value * 1.01


class TestEngineEquivalence:
    """Both engines walk the same Algorithm 2; results must coincide."""

    @pytest.mark.parametrize("workload_factory", [histogram, prefix])
    def test_line_search_converges_to_same_objective(self, workload_factory):
        workload = workload_factory(6)
        config = OptimizerConfig(num_iterations=120, seed=0)
        fast = optimize_strategy(workload, 1.0, config)
        reference = optimize_strategy(
            workload, 1.0, replace(config, engine="reference")
        )
        assert np.isclose(fast.objective, reference.objective, rtol=1e-8)

    def test_fixed_step_mode_matches(self):
        config = OptimizerConfig(
            num_iterations=50, seed=1, line_search=False, step_size=1e-4
        )
        fast = optimize_strategy(prefix(5), 1.0, config)
        reference = optimize_strategy(
            prefix(5), 1.0, replace(config, engine="reference")
        )
        assert np.isclose(fast.objective, reference.objective, rtol=1e-8)

    def test_weighted_prior_matches(self):
        prior = np.array([0.4, 0.3, 0.2, 0.1])
        config = OptimizerConfig(num_iterations=60, seed=2, prior=prior)
        fast = optimize_strategy(histogram(4), 1.0, config)
        reference = optimize_strategy(
            histogram(4), 1.0, replace(config, engine="reference")
        )
        assert np.isclose(fast.objective, reference.objective, rtol=1e-6)

    def test_fast_engine_deterministic(self):
        config = OptimizerConfig(num_iterations=40, seed=3)
        first = optimize_strategy(prefix(4), 1.0, config)
        second = optimize_strategy(prefix(4), 1.0, config)
        assert np.array_equal(
            first.strategy.probabilities, second.strategy.probabilities
        )

    def test_tracked_histories_agree_early(self):
        # The iterate sequences are identical up to round-off, so the first
        # recorded objectives must match tightly before chaos accumulates.
        config = OptimizerConfig(num_iterations=12, seed=4, track_history=True)
        fast = optimize_strategy(histogram(5), 1.0, config)
        reference = optimize_strategy(
            histogram(5), 1.0, replace(config, engine="reference")
        )
        shared = min(len(fast.history), len(reference.history), 5)
        assert np.allclose(
            fast.history[:shared], reference.history[:shared], rtol=1e-9
        )
