"""Tests for prior-weighted optimization (the paper's footnote 2)."""

import numpy as np
import pytest

from repro.analysis import per_user_variances, reconstruction_operator
from repro.analysis.reconstruction import prior_weights
from repro.exceptions import WorkloadError
from repro.optimization import OptimizerConfig, optimize_strategy
from repro.optimization.objective import objective_and_gradient, objective_value
from repro.workloads import prefix


class TestPriorWeights:
    def test_uniform_default(self):
        assert np.array_equal(prior_weights(None, 4), np.ones(4))

    def test_uniform_prior_equals_default(self):
        assert np.allclose(prior_weights(np.full(4, 0.25), 4), np.ones(4))

    def test_normalization(self):
        weights = prior_weights(np.array([2.0, 2.0, 4.0, 0.0]), 4)
        assert np.isclose(weights.sum(), 4.0)

    def test_rejects_bad_priors(self):
        with pytest.raises(WorkloadError):
            prior_weights(np.array([0.5, -0.5]), 2)
        with pytest.raises(WorkloadError):
            prior_weights(np.zeros(3), 3)
        with pytest.raises(WorkloadError):
            prior_weights(np.ones(3), 4)


class TestWeightedObjective:
    def test_uniform_weights_match_default(self, feasible_strategy, small_gram):
        default = objective_value(feasible_strategy, small_gram)
        weighted = objective_value(feasible_strategy, small_gram, np.ones(5))
        assert np.isclose(default, weighted)

    def test_weighted_gradient_finite_differences(self, feasible_strategy, small_gram):
        generator = np.random.default_rng(0)
        weights = prior_weights(generator.dirichlet(np.ones(5)), 5)
        value, gradient = objective_and_gradient(
            feasible_strategy, small_gram, weights
        )
        step = 1e-6
        for _ in range(8):
            i = generator.integers(feasible_strategy.shape[0])
            j = generator.integers(5)
            plus = feasible_strategy.copy()
            plus[i, j] += step
            minus = feasible_strategy.copy()
            minus[i, j] -= step
            finite = (
                objective_value(plus, small_gram, weights)
                - objective_value(minus, small_gram, weights)
            ) / (2 * step)
            assert np.isclose(gradient[i, j], finite, rtol=1e-3, atol=1e-6)

    def test_weights_shape_check(self, feasible_strategy, small_gram):
        from repro.exceptions import OptimizationError

        with pytest.raises(OptimizationError):
            objective_value(feasible_strategy, small_gram, np.ones(4))


class TestPriorAdaptedMechanism:
    def test_prior_reconstruction_unbiased(self, feasible_strategy):
        # B Q = I regardless of the prior (for full-rank strategies), so the
        # estimator stays unbiased for every data vector.
        prior = np.array([0.7, 0.1, 0.1, 0.05, 0.05])
        operator = reconstruction_operator(feasible_strategy, prior)
        assert np.allclose(operator @ feasible_strategy, np.eye(5), atol=1e-8)

    def test_prior_optimization_helps_on_that_prior(self):
        # Optimize for a concentrated prior; its expected variance under
        # that prior should beat the uniform-optimized strategy's.
        workload = prefix(8)
        prior = np.array([0.4, 0.3, 0.1, 0.05, 0.05, 0.04, 0.03, 0.03])
        uniform = optimize_strategy(
            workload, 1.0, OptimizerConfig(num_iterations=300, seed=0)
        )
        adapted = optimize_strategy(
            workload, 1.0, OptimizerConfig(num_iterations=300, seed=0, prior=prior)
        )
        uniform_t = per_user_variances(uniform.strategy.probabilities, workload.gram())
        adapted_t = per_user_variances(
            adapted.strategy.probabilities, workload.gram(), prior=prior
        )
        assert prior @ adapted_t < prior @ uniform_t

    def test_prior_strategy_still_valid_ldp(self):
        workload = prefix(6)
        prior = np.array([0.5, 0.2, 0.1, 0.1, 0.05, 0.05])
        result = optimize_strategy(
            workload, 1.0, OptimizerConfig(num_iterations=100, seed=0, prior=prior)
        )
        assert result.strategy.realized_ratio() <= np.e * (1 + 1e-8)
