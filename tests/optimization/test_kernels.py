"""Fast-vs-reference equivalence suite for the objective kernels.

The factorization-cached workspace must be numerically interchangeable
with the straight-line reference implementation: same values, same
gradients, same infeasibility verdicts, across priors and degenerate
strategies.  Tolerances here are deliberately tight (rtol 1e-9 or better)
— the fast path is a reimplementation of the same algebra, not an
approximation.
"""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optimization import (
    OBJECTIVE_ENGINES,
    ObjectiveWorkspace,
    initial_bounds,
    make_engine,
    project_columns,
)
from repro.optimization.objective import (
    objective_and_gradient,
    objective_value,
    reference_objective_and_gradient,
    reference_objective_value,
)
from repro.workloads import histogram, parity, prefix

RTOL = 1e-9


def feasible(rows, cols, epsilon, seed):
    raw = np.random.default_rng(seed).random((rows, cols))
    return project_columns(raw, initial_bounds(rows, epsilon), epsilon).matrix


def weighted_prior(cols, seed):
    prior = np.random.default_rng(seed).random(cols)
    prior /= prior.sum()
    return cols * prior  # the w = n * prior convention of footnote 2


class TestFastMatchesReference:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("workload", [histogram, prefix])
    def test_uniform_prior(self, seed, workload):
        cols = 3 + seed
        strategy = feasible(4 * cols, cols, 1.0, seed)
        gram = workload(cols).gram()
        fast_value, fast_gradient = objective_and_gradient(strategy, gram)
        ref_value, ref_gradient = reference_objective_and_gradient(
            strategy, gram
        )
        assert np.isclose(fast_value, ref_value, rtol=RTOL)
        assert np.allclose(fast_gradient, ref_gradient, rtol=RTOL, atol=1e-12)

    @pytest.mark.parametrize("seed", range(4))
    def test_weighted_prior(self, seed):
        cols = 4 + seed
        strategy = feasible(3 * cols, cols, 0.8, seed)
        gram = prefix(cols).gram()
        weights = weighted_prior(cols, seed + 100)
        fast_value, fast_gradient = objective_and_gradient(
            strategy, gram, weights
        )
        ref_value, ref_gradient = reference_objective_and_gradient(
            strategy, gram, weights
        )
        assert np.isclose(fast_value, ref_value, rtol=RTOL)
        assert np.allclose(fast_gradient, ref_gradient, rtol=RTOL, atol=1e-12)

    def test_dead_row_strategy(self):
        # Rows with zero mass are dead outputs; both paths must zero them
        # out of D^-1 identically.
        strategy = feasible(12, 4, 1.0, seed=7)
        dead = np.vstack([strategy, np.zeros((3, 4))])
        dead = dead / dead.sum(axis=0)
        gram = histogram(4).gram()
        fast_value, fast_gradient = objective_and_gradient(dead, gram)
        ref_value, ref_gradient = reference_objective_and_gradient(dead, gram)
        assert np.isclose(fast_value, ref_value, rtol=RTOL)
        assert np.allclose(fast_gradient, ref_gradient, rtol=RTOL, atol=1e-12)

    def test_infeasible_overshoot_branch(self):
        # A rank-1 strategy cannot answer a full-rank workload: both paths
        # must report inf (the line-search overshoot signal), not a value.
        strategy = np.full((8, 4), 0.125)
        assert objective_value(strategy, np.eye(4)) == np.inf
        assert reference_objective_value(strategy, np.eye(4)) == np.inf
        fast_value, fast_gradient = objective_and_gradient(
            strategy, np.eye(4)
        )
        assert fast_value == np.inf and fast_gradient is None

    def test_low_rank_workload_feasible_on_eigh_fallback(self):
        # Parity(3,1) has rank 3 over n=8; a low-rank strategy stays
        # feasible, so the eigh fallback must return finite values that
        # match the reference.
        workload = parity(3, 1)
        gram = workload.gram()
        rng = np.random.default_rng(3)
        # Build a rank-deficient strategy whose range still covers the
        # workload: duplicate columns of a smaller feasible strategy.
        base = feasible(16, 8, 1.0, seed=3)
        fast_value = objective_value(base, gram)
        ref_value = reference_objective_value(base, gram)
        assert np.isclose(fast_value, ref_value, rtol=RTOL)
        # A genuinely singular core (duplicated output rows halved) keeps
        # the same objective; both paths agree on the fallback.
        doubled = np.vstack([base[:1] / 2, base[:1] / 2, base[1:]])
        assert np.isclose(
            objective_value(doubled, gram),
            reference_objective_value(doubled, gram),
            rtol=RTOL,
        )
        del rng

    def test_negative_row_sum_rejected_by_both(self):
        strategy = np.array([[-0.5, -0.5], [1.5, 1.5]])
        with pytest.raises(OptimizationError):
            objective_value(strategy, np.eye(2))
        with pytest.raises(OptimizationError):
            reference_objective_value(strategy, np.eye(2))


class TestFiniteDifferences:
    @pytest.mark.parametrize("seed", range(3))
    def test_fast_gradient_matches_central_differences(self, seed):
        rows, cols = 14, 4
        strategy = feasible(rows, cols, 1.0, seed)
        gram = prefix(cols).gram()
        workspace = ObjectiveWorkspace(gram, rows)
        _, gradient = workspace.value_and_gradient(strategy)
        generator = np.random.default_rng(seed + 1)
        step = 1e-6
        for _ in range(5):
            i = int(generator.integers(rows))
            j = int(generator.integers(cols))
            plus = strategy.copy()
            plus[i, j] += step
            minus = strategy.copy()
            minus[i, j] -= step
            finite = (
                workspace.value(plus) - workspace.value(minus)
            ) / (2 * step)
            assert np.isclose(gradient[i, j], finite, rtol=1e-3, atol=1e-5)

    def test_fast_gradient_with_weights_matches_central_differences(self):
        rows, cols = 12, 5
        strategy = feasible(rows, cols, 1.0, seed=9)
        gram = histogram(cols).gram()
        weights = weighted_prior(cols, 9)
        workspace = ObjectiveWorkspace(gram, rows, weights)
        _, gradient = workspace.value_and_gradient(strategy)
        step = 1e-6
        for i, j in ((0, 0), (5, 2), (11, 4)):
            plus = strategy.copy()
            plus[i, j] += step
            minus = strategy.copy()
            minus[i, j] -= step
            finite = (
                workspace.value(plus) - workspace.value(minus)
            ) / (2 * step)
            assert np.isclose(gradient[i, j], finite, rtol=1e-3, atol=1e-5)


class TestWorkspace:
    def test_reuse_has_no_state_leakage(self):
        # Evaluating A then B must give the same numbers as B alone: the
        # scratch buffers carry no information between evaluations.
        gram = prefix(5).gram()
        first = feasible(20, 5, 1.0, seed=0)
        second = feasible(20, 5, 1.0, seed=1)
        shared = ObjectiveWorkspace(gram, 20)
        shared.value_and_gradient(first)
        value_after, gradient_after = shared.value_and_gradient(second)
        fresh = ObjectiveWorkspace(gram, 20)
        value_fresh, gradient_fresh = fresh.value_and_gradient(second)
        assert value_after == value_fresh
        assert np.array_equal(gradient_after, gradient_fresh)

    def test_value_batch_matches_scalar(self):
        gram = histogram(4).gram()
        workspace = ObjectiveWorkspace(gram, 16)
        candidates = [feasible(16, 4, 1.0, seed) for seed in range(4)]
        batch = workspace.value_batch(candidates)
        singles = [workspace.value(candidate) for candidate in candidates]
        assert np.array_equal(batch, np.array(singles))

    def test_value_without_gram_factor_matches(self):
        gram = prefix(6).gram()
        strategy = feasible(24, 6, 1.0, seed=2)
        with_factor = ObjectiveWorkspace(gram, 24, factor_gram=True)
        without = ObjectiveWorkspace(gram, 24, factor_gram=False)
        assert np.isclose(
            with_factor.value(strategy), without.value(strategy), rtol=RTOL
        )
        value_a, gradient_a = with_factor.value_and_gradient(strategy)
        value_b, gradient_b = without.value_and_gradient(strategy)
        assert np.isclose(value_a, value_b, rtol=RTOL)
        assert np.allclose(gradient_a, gradient_b, rtol=RTOL, atol=1e-12)

    def test_shape_validation(self):
        workspace = ObjectiveWorkspace(np.eye(3), 6)
        with pytest.raises(OptimizationError):
            workspace.value(np.ones((5, 3)) / 5)
        with pytest.raises(OptimizationError):
            workspace.value(np.ones(3))
        with pytest.raises(OptimizationError):
            ObjectiveWorkspace(np.ones((2, 3)), 4)
        with pytest.raises(OptimizationError):
            ObjectiveWorkspace(np.eye(3), 0)
        with pytest.raises(OptimizationError):
            ObjectiveWorkspace(np.eye(3), 6, weights=np.ones(4))


class TestEngines:
    def test_make_engine_names(self):
        assert make_engine("fast", np.eye(3), 12).name == "fast"
        assert make_engine("reference", np.eye(3), 12).name == "reference"
        assert set(OBJECTIVE_ENGINES) == {"fast", "reference"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(OptimizationError):
            make_engine("autograd", np.eye(3), 12)

    def test_engines_agree_on_values_and_projections(self):
        gram = prefix(4).gram()
        fast = make_engine("fast", gram, 16)
        reference = make_engine("reference", gram, 16)
        strategy = feasible(16, 4, 1.0, seed=4)
        assert np.isclose(
            fast.value(strategy), reference.value(strategy), rtol=RTOL
        )
        raw = np.random.default_rng(0).random((16, 4))
        bounds = initial_bounds(16, 1.0)
        assert np.allclose(
            fast.project(raw, bounds, 1.0).matrix,
            reference.project(raw, bounds, 1.0).matrix,
            atol=1e-10,
        )

    def test_batch_apis_agree(self):
        gram = histogram(5).gram()
        fast = make_engine("fast", gram, 20)
        reference = make_engine("reference", gram, 20)
        candidates = [feasible(20, 5, 1.0, seed) for seed in (1, 2, 3)]
        assert np.allclose(
            fast.value_batch(candidates),
            reference.value_batch(candidates),
            rtol=RTOL,
        )
        raws = [
            np.random.default_rng(seed).random((20, 5)) for seed in (1, 2)
        ]
        bounds = initial_bounds(20, 1.0)
        fast_states = fast.project_batch(raws, bounds, 1.0)
        reference_states = reference.project_batch(raws, bounds, 1.0)
        for fast_state, reference_state in zip(fast_states, reference_states):
            assert np.allclose(
                fast_state.matrix, reference_state.matrix, atol=1e-10
            )
