"""Documentation invariants: pages exist, README links them, links resolve.

The same checks run in CI's docs job via ``scripts/check_markdown_links.py``;
keeping them in tier-1 means a broken docs link fails the ordinary test run
too, not just the docs job.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_PAGES = (
    "architecture.md",
    "mechanism-catalog.md",
    "strategy-store.md",
    "protocol-engine.md",
    "serving.md",
)


def load_checker():
    path = REPO_ROOT / "scripts" / "check_markdown_links.py"
    spec = importlib.util.spec_from_file_location("check_markdown_links", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("page", DOC_PAGES)
def test_doc_page_exists_and_has_content(page):
    path = REPO_ROOT / "docs" / page
    assert path.is_file(), f"missing docs page {page}"
    text = path.read_text(encoding="utf-8")
    assert text.startswith("#"), f"{page} should start with a heading"
    assert len(text) > 1000, f"{page} looks like a stub"


@pytest.mark.parametrize("page", DOC_PAGES)
def test_readme_links_every_doc_page(page):
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert f"docs/{page}" in readme, f"README does not link docs/{page}"


def test_no_broken_markdown_links():
    checker = load_checker()
    checked, problems = checker.check_tree(REPO_ROOT)
    assert checked >= 4 + 1  # at least the docs pages and the README
    assert problems == [], "broken links:\n" + "\n".join(problems)


def test_mechanism_catalog_covers_every_module():
    """Each mechanism module gets a section (satellite: one per mechanism)."""
    catalog = (REPO_ROOT / "docs" / "mechanism-catalog.md").read_text(
        encoding="utf-8"
    )
    mechanisms_dir = REPO_ROOT / "src" / "repro" / "mechanisms"
    skip = {"__init__", "base", "interface", "registry"}
    for module in sorted(mechanisms_dir.glob("*.py")):
        if module.stem in skip:
            continue
        assert f"`{module.stem}.py`" in catalog, (
            f"docs/mechanism-catalog.md has no section for {module.stem}.py"
        )


def test_checker_catches_broken_link_with_caret_in_text(tmp_path):
    """Regression: math-y link text like ``e^eps`` must not hide a broken
    target from the checker."""
    checker = load_checker()
    (tmp_path / "page.md").write_text(
        "# Page\n\nSee [the e^eps bound](missing.md).\n", encoding="utf-8"
    )
    checked, problems = checker.check_tree(tmp_path)
    assert checked == 1
    assert len(problems) == 1 and "missing.md" in problems[0]


def test_checker_reports_real_line_numbers_below_fences(tmp_path):
    checker = load_checker()
    (tmp_path / "page.md").write_text(
        "# Page\n\n```\ncode\ncode\n```\n\n[broken](missing.md)\n",
        encoding="utf-8",
    )
    _, problems = checker.check_tree(tmp_path)
    assert problems and problems[0].startswith("page.md:8:")


def test_cli_docs_mention_strategy_commands():
    page = (REPO_ROOT / "docs" / "strategy-store.md").read_text(encoding="utf-8")
    for command in ("strategy build", "strategy list", "strategy inspect",
                    "strategy prune"):
        assert command in page
