"""Tests for repro.workloads.base."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import WorkloadError
from repro.workloads import ExplicitWorkload, histogram, prefix, stack, weighted


class TestExplicitWorkload:
    def test_shape_attributes(self):
        workload = ExplicitWorkload(np.ones((3, 5)))
        assert workload.num_queries == 3
        assert workload.domain_size == 5

    def test_rejects_non_2d(self):
        with pytest.raises(WorkloadError):
            ExplicitWorkload(np.ones(4))

    def test_rejects_non_finite(self):
        matrix = np.ones((2, 2))
        matrix[0, 0] = np.nan
        with pytest.raises(WorkloadError):
            ExplicitWorkload(matrix)

    def test_gram_matches_definition(self):
        matrix = np.array([[1.0, 2.0], [0.0, -1.0], [3.0, 1.0]])
        workload = ExplicitWorkload(matrix)
        assert np.allclose(workload.gram(), matrix.T @ matrix)

    def test_gram_cached(self):
        workload = ExplicitWorkload(np.eye(3))
        assert workload.gram() is workload.gram()

    def test_frobenius_norm(self):
        matrix = np.array([[3.0, 4.0]])
        assert ExplicitWorkload(matrix).frobenius_norm_squared() == 25.0

    def test_matvec(self):
        matrix = np.array([[1.0, 1.0], [1.0, -1.0]])
        workload = ExplicitWorkload(matrix)
        assert np.array_equal(workload.matvec(np.array([2.0, 3.0])), [5.0, -1.0])

    def test_matvec_shape_check(self):
        with pytest.raises(WorkloadError):
            ExplicitWorkload(np.eye(3)).matvec(np.ones(4))

    def test_rmatvec(self):
        matrix = np.array([[1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        workload = ExplicitWorkload(matrix)
        assert np.array_equal(workload.rmatvec(np.ones(3)), [2.0, 2.0])

    def test_rmatvec_shape_check(self):
        with pytest.raises(WorkloadError):
            ExplicitWorkload(np.eye(3)).rmatvec(np.ones(4))

    def test_error_quadratic_matches_norm(self):
        workload = prefix(6)
        delta = np.linspace(-1, 1, 6)
        direct = np.sum((workload.matrix @ delta) ** 2)
        assert np.isclose(workload.error_quadratic(delta), direct)

    def test_singular_values_match_numpy(self):
        workload = prefix(5)
        expected = np.linalg.svd(workload.matrix, compute_uv=False)
        assert np.allclose(workload.singular_values(), expected)

    def test_repr_mentions_name(self):
        assert "Histogram" in repr(histogram(4))


class TestStack:
    def test_stacks_rows(self):
        stacked = stack([histogram(3), prefix(3)])
        assert stacked.num_queries == 6
        assert stacked.domain_size == 3

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            stack([])

    def test_rejects_mismatched_domains(self):
        with pytest.raises(WorkloadError):
            stack([histogram(3), histogram(4)])


class TestWeighted:
    def test_scales_matrix(self):
        doubled = weighted(histogram(3), 2.0)
        assert np.allclose(doubled.matrix, 2.0 * np.eye(3))

    def test_scales_gram_quadratically(self):
        tripled = weighted(prefix(4), 3.0)
        assert np.allclose(tripled.gram(), 9.0 * prefix(4).gram())

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(WorkloadError):
            weighted(histogram(3), 0.0)

    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_weight_in_name(self, weight):
        assert f"{weight:g}" in weighted(histogram(2), weight).name
