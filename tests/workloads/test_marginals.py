"""Tests for the marginals workloads."""

import numpy as np
import pytest
from scipy.special import comb

from repro.domains import BinaryDomain
from repro.exceptions import WorkloadError
from repro.workloads import all_marginals, k_way_marginals
from repro.workloads.marginals import MarginalsWorkload, _marginal_rows


class TestMarginalRows:
    def test_empty_subset_is_total(self):
        rows = _marginal_rows(BinaryDomain(3), 0)
        assert rows.shape == (1, 8)
        assert np.array_equal(rows, np.ones((1, 8)))

    def test_single_attribute(self):
        rows = _marginal_rows(BinaryDomain(2), 0b01)
        # Setting 0: types with attribute0 = 0 -> {0, 2}; setting 1 -> {1, 3}.
        assert np.array_equal(rows, [[1, 0, 1, 0], [0, 1, 0, 1]])

    def test_rows_partition_domain(self):
        rows = _marginal_rows(BinaryDomain(4), 0b1010)
        assert np.array_equal(rows.sum(axis=0), np.ones(16))


class TestAllMarginals:
    def test_query_count_3k(self):
        assert all_marginals(3).num_queries == 27

    @pytest.mark.parametrize("attributes", [1, 2, 3, 4])
    def test_gram_closed_form(self, attributes):
        workload = all_marginals(attributes)
        explicit = workload.matrix
        assert np.allclose(workload.gram(), explicit.T @ explicit)

    def test_frobenius(self):
        workload = all_marginals(3)
        # ||W||_F^2 = n * 2^k = 8 * 8.
        assert workload.frobenius_norm_squared() == 64.0

    def test_includes_total_query(self):
        matrix = all_marginals(2).matrix
        assert any(np.array_equal(row, np.ones(4)) for row in matrix)


class TestKWayMarginals:
    def test_query_count(self):
        workload = k_way_marginals(5, 3)
        assert workload.num_queries == comb(5, 3, exact=True) * 8

    @pytest.mark.parametrize("attributes,way", [(3, 1), (3, 3), (4, 2), (5, 3)])
    def test_gram_closed_form(self, attributes, way):
        workload = k_way_marginals(attributes, way)
        explicit = workload.matrix
        assert np.allclose(workload.gram(), explicit.T @ explicit)

    def test_rows_are_indicators(self):
        matrix = k_way_marginals(4, 2).matrix
        assert set(np.unique(matrix)) <= {0.0, 1.0}

    def test_rejects_bad_way(self):
        with pytest.raises(WorkloadError):
            k_way_marginals(3, 4)
        with pytest.raises(WorkloadError):
            k_way_marginals(3, 0)

    def test_name_mentions_way(self):
        assert k_way_marginals(4, 3).name == "3-Way Marginals"


class TestMarginalsWorkloadValidation:
    def test_rejects_empty_subsets(self):
        with pytest.raises(WorkloadError):
            MarginalsWorkload(BinaryDomain(2), [], name="empty")

    def test_rejects_out_of_range_mask(self):
        with pytest.raises(WorkloadError):
            MarginalsWorkload(BinaryDomain(2), [4], name="bad")
