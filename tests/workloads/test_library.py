"""Tests for the Histogram and Prefix workloads."""

import numpy as np
import pytest

from repro.workloads import histogram, prefix


class TestHistogram:
    def test_identity_matrix(self):
        assert np.array_equal(histogram(4).matrix, np.eye(4))

    def test_gram_is_identity(self):
        assert np.array_equal(histogram(5).gram(), np.eye(5))

    def test_name(self):
        assert histogram(3).name == "Histogram"

    def test_answers_are_counts(self):
        x = np.array([10.0, 20.0, 5.0])
        assert np.array_equal(histogram(3).matvec(x), x)


class TestPrefix:
    def test_example_2_4_matrix(self):
        # The student-grade prefix workload from Example 2.4.
        expected = np.tril(np.ones((5, 5)))
        assert np.array_equal(prefix(5).matrix, expected)

    def test_answers_are_cumulative(self):
        x = np.array([10.0, 20.0, 5.0, 0.0, 0.0])
        assert np.array_equal(prefix(5).matvec(x), [10.0, 30.0, 35.0, 35.0, 35.0])

    @pytest.mark.parametrize("size", [1, 2, 5, 9])
    def test_gram_closed_form(self, size):
        workload = prefix(size)
        assert np.allclose(workload.gram(), workload.matrix.T @ workload.matrix)

    def test_frobenius(self):
        # ||W||_F^2 = 1 + 2 + ... + n.
        assert prefix(6).frobenius_norm_squared() == 21.0

    def test_full_rank(self):
        assert prefix(7).singular_values().min() > 0
