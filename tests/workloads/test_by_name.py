"""Tests for the workload name registry."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import PAPER_WORKLOADS, by_name


class TestByName:
    @pytest.mark.parametrize("name", PAPER_WORKLOADS)
    def test_all_paper_workloads_resolve(self, name):
        workload = by_name(name, 16)
        assert workload.domain_size == 16
        assert workload.name == name

    def test_binary_workloads_need_power_of_two(self):
        with pytest.raises(WorkloadError):
            by_name("AllMarginals", 12)

    def test_flat_workloads_accept_any_size(self):
        assert by_name("Prefix", 12).domain_size == 12

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            by_name("Wavelet", 8)

    def test_three_way_clamps_small_domains(self):
        # n = 4 has only 2 attributes, so the 3-way workload degrades to 2-way.
        workload = by_name("3-Way Marginals", 4)
        assert workload.domain_size == 4
