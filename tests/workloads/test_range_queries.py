"""Tests for the implicit AllRange workload."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import WorkloadError
from repro.workloads import all_range
from repro.workloads.base import MAX_EXPLICIT_ENTRIES


class TestAllRangeExplicit:
    def test_query_count(self):
        assert all_range(6).num_queries == 21

    def test_matrix_rows_are_ranges(self):
        matrix = all_range(3).matrix
        expected = np.array(
            [
                [1, 0, 0],
                [1, 1, 0],
                [1, 1, 1],
                [0, 1, 0],
                [0, 1, 1],
                [0, 0, 1],
            ],
            dtype=float,
        )
        assert np.array_equal(matrix, expected)

    def test_refuses_huge_matrix(self):
        big = all_range(1024)
        assert big.num_queries * 1024 > MAX_EXPLICIT_ENTRIES
        with pytest.raises(WorkloadError):
            _ = big.matrix


class TestAllRangeImplicit:
    @pytest.mark.parametrize("size", [1, 2, 3, 7, 12])
    def test_gram_closed_form(self, size):
        workload = all_range(size)
        explicit = workload.matrix
        assert np.allclose(workload.gram(), explicit.T @ explicit)

    @pytest.mark.parametrize("size", [1, 4, 9])
    def test_frobenius_closed_form(self, size):
        workload = all_range(size)
        assert np.isclose(
            workload.frobenius_norm_squared(), np.sum(workload.matrix**2)
        )

    def test_gram_works_at_large_scale(self):
        # Never materializes the 131328 x 512 matrix.
        workload = all_range(512)
        gram = workload.gram()
        assert gram.shape == (512, 512)
        assert gram[0, 0] == 512.0  # ranges containing type 0: 1 * (n - 0)

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=99))
    def test_matvec_matches_matrix(self, size, seed):
        workload = all_range(size)
        x = np.random.default_rng(seed).normal(size=size)
        assert np.allclose(workload.matvec(x), workload.matrix @ x)

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=99))
    def test_rmatvec_matches_matrix(self, size, seed):
        workload = all_range(size)
        a = np.random.default_rng(seed).normal(size=workload.num_queries)
        assert np.allclose(workload.rmatvec(a), workload.matrix.T @ a)

    def test_rmatvec_shape_check(self):
        with pytest.raises(WorkloadError):
            all_range(4).rmatvec(np.ones(3))

    def test_singular_values_positive(self):
        assert all_range(8).singular_values().min() > 0
