"""Tests for random workload builders."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workloads import random_range_workload, random_workload


class TestRandomWorkload:
    def test_shape(self):
        workload = random_workload(7, 4, seed=0)
        assert workload.num_queries == 7
        assert workload.domain_size == 4

    def test_deterministic_with_seed(self):
        first = random_workload(5, 5, seed=3).matrix
        second = random_workload(5, 5, seed=3).matrix
        assert np.array_equal(first, second)

    def test_density_controls_sparsity(self):
        dense = random_workload(50, 20, seed=1, density=1.0).matrix
        sparse = random_workload(50, 20, seed=1, density=0.1).matrix
        assert (sparse == 0).sum() > (dense == 0).sum()

    def test_no_zero_rows(self):
        matrix = random_workload(100, 30, seed=2, density=0.02).matrix
        assert (np.abs(matrix).sum(axis=1) > 0).all()

    def test_rejects_bad_density(self):
        with pytest.raises(WorkloadError):
            random_workload(3, 3, density=0.0)


class TestRandomRangeWorkload:
    def test_rows_are_contiguous_ranges(self):
        matrix = random_range_workload(20, 10, seed=0).matrix
        for row in matrix:
            support = np.flatnonzero(row)
            assert np.array_equal(support, np.arange(support[0], support[-1] + 1))
            assert np.all(row[support] == 1.0)

    def test_deterministic_with_seed(self):
        first = random_range_workload(5, 8, seed=9).matrix
        second = random_range_workload(5, 8, seed=9).matrix
        assert np.array_equal(first, second)
