"""Tests for Kronecker-structured workloads and product marginals."""

import numpy as np
import pytest

from repro.domains import ProductDomain
from repro.exceptions import WorkloadError
from repro.workloads import (
    KronWorkload,
    all_marginals,
    all_product_marginals,
    k_way_product_marginals,
    product_marginals,
)


def small_kron() -> KronWorkload:
    prefix3 = np.tril(np.ones((3, 3)))
    identity2 = np.eye(2)
    ranges4 = np.array([[1.0, 1.0, 0.0, 0.0], [0.0, 0.0, 1.0, 1.0]])
    return KronWorkload([prefix3, identity2, ranges4], name="Mixed")


class TestKronWorkload:
    def test_shapes(self):
        workload = small_kron()
        assert workload.domain_size == 3 * 2 * 4
        assert workload.num_queries == 3 * 2 * 2

    def test_matrix_is_kron_product(self):
        workload = small_kron()
        expected = np.kron(
            workload.factors[2], np.kron(workload.factors[1], workload.factors[0])
        )
        assert np.array_equal(workload.matrix, expected)

    def test_gram_factorizes(self):
        workload = small_kron()
        explicit = workload.matrix
        assert np.allclose(workload.gram(), explicit.T @ explicit)

    def test_frobenius_factorizes(self):
        workload = small_kron()
        assert np.isclose(
            workload.frobenius_norm_squared(), np.sum(workload.matrix**2)
        )

    def test_matvec_matches_matrix(self, rng):
        workload = small_kron()
        x = rng.normal(size=workload.domain_size)
        assert np.allclose(workload.matvec(x), workload.matrix @ x)

    def test_rmatvec_matches_matrix(self, rng):
        workload = small_kron()
        a = rng.normal(size=workload.num_queries)
        assert np.allclose(workload.rmatvec(a), workload.matrix.T @ a)

    def test_single_factor_degenerates(self):
        matrix = np.tril(np.ones((4, 4)))
        workload = KronWorkload([matrix])
        assert np.array_equal(workload.matrix, matrix)

    def test_rejects_empty_and_bad_factors(self):
        with pytest.raises(WorkloadError):
            KronWorkload([])
        with pytest.raises(WorkloadError):
            KronWorkload([np.ones(3)])


class TestProductMarginals:
    def test_query_count(self):
        workload = product_marginals((3, 4), [(0,), (1,), (0, 1)])
        assert workload.num_queries == 3 + 4 + 12

    def test_matrix_rows_are_indicators(self):
        workload = product_marginals((3, 2), [(0, 1)])
        assert set(np.unique(workload.matrix)) <= {0.0, 1.0}
        # The (0,1) marginal partitions the domain.
        assert np.array_equal(workload.matrix.sum(axis=0), np.ones(6))

    def test_gram_matches_explicit(self, rng):
        workload = product_marginals((3, 4, 2), [(0,), (2,), (0, 2), (1, 2)])
        explicit = workload.matrix
        assert np.allclose(workload.gram(), explicit.T @ explicit)

    def test_matvec_and_rmatvec(self, rng):
        workload = product_marginals((3, 4), [(0,), (0, 1)])
        x = rng.normal(size=12)
        assert np.allclose(workload.matvec(x), workload.matrix @ x)
        a = rng.normal(size=workload.num_queries)
        assert np.allclose(workload.rmatvec(a), workload.matrix.T @ a)

    def test_binary_case_matches_binary_marginals(self):
        # Same query set as the binary AllMarginals workload, so the Gram
        # matrices must agree (row order may differ).
        binary = all_marginals(3)
        general = all_product_marginals((2, 2, 2))
        assert general.num_queries == binary.num_queries
        assert np.allclose(general.gram(), binary.gram())

    def test_all_product_marginals_count(self):
        workload = all_product_marginals((3, 4))
        # (1 + 3) * (1 + 4) = subsets {}, {0}, {1}, {0,1} -> 1 + 3 + 4 + 12.
        assert workload.num_queries == 20

    def test_k_way_count(self):
        workload = k_way_product_marginals((3, 4, 5), 2)
        assert workload.num_queries == 3 * 4 + 3 * 5 + 4 * 5

    def test_k_way_rejects_bad_way(self):
        with pytest.raises(WorkloadError):
            k_way_product_marginals((3, 4), 3)

    def test_rejects_bad_subsets(self):
        domain = ProductDomain((3, 4))
        with pytest.raises(WorkloadError):
            product_marginals((3, 4), [])
        with pytest.raises(WorkloadError):
            product_marginals((3, 4), [(2,)])
        with pytest.raises(WorkloadError):
            product_marginals((3, 4), [(0, 0)])
        assert domain.size == 12


class TestKronProperties:
    """Hypothesis checks of the factor-wise algebra."""

    from hypothesis import given
    from hypothesis import strategies as st

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=3),
                st.integers(min_value=2, max_value=3),
            ),
            min_size=1,
            max_size=3,
        ),
        st.integers(min_value=0, max_value=100),
    )
    def test_matvec_agrees_with_explicit(self, shapes, seed):
        generator = np.random.default_rng(seed)
        factors = [generator.normal(size=shape) for shape in shapes]
        workload = KronWorkload(factors)
        x = generator.normal(size=workload.domain_size)
        assert np.allclose(workload.matvec(x), workload.matrix @ x)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=3),
                st.integers(min_value=2, max_value=3),
            ),
            min_size=1,
            max_size=3,
        ),
        st.integers(min_value=0, max_value=100),
    )
    def test_gram_agrees_with_explicit(self, shapes, seed):
        generator = np.random.default_rng(seed)
        factors = [generator.normal(size=shape) for shape in shapes]
        workload = KronWorkload(factors)
        explicit = workload.matrix
        assert np.allclose(workload.gram(), explicit.T @ explicit)


class TestOptimizationOverProductDomain:
    def test_optimizer_beats_rr_on_product_marginals(self):
        from repro.mechanisms import paper_baselines
        from repro.optimization import OptimizedMechanism, OptimizerConfig

        workload = k_way_product_marginals((3, 2, 2), 2)
        mechanism = OptimizedMechanism(OptimizerConfig(num_iterations=150, seed=0))
        ours = mechanism.sample_complexity(workload, 1.0)
        rr = paper_baselines()[0]
        assert ours < rr.sample_complexity(workload, 1.0)


class TestAllocationCaps:
    """The cell caps that keep huge product domains from materializing."""

    def test_matrix_cap_raises_value_error_with_size(self):
        workload = KronWorkload(
            [np.eye(1024), np.eye(1024)], max_explicit_entries=10_000
        )
        with pytest.raises(ValueError) as caught:
            workload.matrix
        message = str(caught.value)
        assert "1048576 x 1048576" in message
        assert "1099511627776" in message  # the would-be cell count
        assert "cap" in message

    def test_gram_cap_raises_value_error(self):
        from repro.exceptions import AllocationCapError

        workload = KronWorkload(
            [np.eye(1024), np.eye(1024)], max_explicit_entries=10_000
        )
        with pytest.raises(AllocationCapError):
            workload.gram()
        # AllocationCapError is catchable as a plain ValueError too.
        assert issubclass(AllocationCapError, ValueError)

    def test_product_marginals_caps(self):
        workload = product_marginals((64, 64, 64, 64), [(0, 1), (2, 3)])
        workload.max_explicit_entries = 10_000
        for block in workload._blocks:
            block.max_explicit_entries = 10_000
        with pytest.raises(ValueError):
            workload.matrix
        with pytest.raises(ValueError):
            workload.gram()

    def test_factored_accessors_ignore_cap(self):
        workload = KronWorkload(
            [np.eye(1024), np.eye(1024)], max_explicit_entries=10_000
        )
        grams = workload.factor_grams()
        assert [gram.shape for gram in grams] == [(1024, 1024), (1024, 1024)]
        assert workload.frobenius_norm_squared() == 1024.0 * 1024.0

    def test_small_domains_unaffected(self):
        workload = KronWorkload([np.eye(3), np.eye(2)])
        assert workload.matrix.shape == (6, 6)
        assert workload.gram().shape == (6, 6)


class TestFactoredGramProperties:
    """Product identities of the factored Gram representation."""

    from hypothesis import given
    from hypothesis import strategies as st

    @given(
        st.lists(st.integers(min_value=2, max_value=4), min_size=2, max_size=3),
        st.integers(min_value=0, max_value=50),
    )
    def test_frobenius_matches_dense(self, sizes, seed):
        generator = np.random.default_rng(seed)
        num_attributes = len(sizes)
        subsets = [(index,) for index in range(num_attributes)]
        if num_attributes >= 2:
            subsets.append((0, 1))
        workload = product_marginals(tuple(sizes), subsets)
        dense = workload.matrix
        assert np.isclose(
            workload.frobenius_norm_squared(), float(np.sum(dense**2))
        )
        assert generator is not None

    @given(
        st.lists(st.integers(min_value=2, max_value=4), min_size=2, max_size=3)
    )
    def test_gram_factor_blocks_compose_to_dense_gram(self, sizes):
        workload = all_product_marginals(tuple(sizes))
        composed = np.zeros((workload.domain_size, workload.domain_size))
        for block in workload.gram_factor_blocks():
            term = np.array([[1.0]])
            for factor_gram in block:
                term = np.kron(factor_gram, term)
            composed += term
        assert np.allclose(composed, workload.gram())

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=3),
                st.integers(min_value=2, max_value=3),
            ),
            min_size=1,
            max_size=3,
        ),
        st.integers(min_value=0, max_value=50),
    )
    def test_kron_factor_grams_compose(self, shapes, seed):
        generator = np.random.default_rng(seed)
        factors = [generator.normal(size=shape) for shape in shapes]
        workload = KronWorkload(factors)
        composed = np.array([[1.0]])
        for factor_gram in workload.factor_grams():
            composed = np.kron(factor_gram, composed)
        assert np.allclose(composed, workload.gram())
