"""Tests for the Parity workload."""

import numpy as np
import pytest
from scipy.special import comb

from repro.exceptions import WorkloadError
from repro.workloads import parity
from repro.workloads.parity import ParityWorkload


class TestParity:
    def test_query_count(self):
        workload = parity(5, 3)
        expected = comb(5, 1, exact=True) + comb(5, 2, exact=True) + comb(5, 3, exact=True)
        assert workload.num_queries == expected

    def test_entries_are_pm_one(self):
        assert set(np.unique(parity(4, 2).matrix)) == {-1.0, 1.0}

    def test_rows_are_characters(self):
        workload = parity(3, 3)
        matrix = workload.matrix
        for row, mask in zip(matrix, workload.subset_masks):
            for user_type in range(8):
                expected = (-1.0) ** bin(mask & user_type).count("1")
                assert row[user_type] == expected

    def test_characters_orthogonal(self):
        matrix = parity(4, 4).matrix
        gram_rows = matrix @ matrix.T
        assert np.allclose(gram_rows, 16 * np.eye(matrix.shape[0]))

    def test_low_rank(self):
        # The property Section 6.5 calls out: rank p << n.
        workload = parity(5, 3)
        assert workload.num_queries < workload.domain_size
        values = workload.singular_values()
        assert np.sum(values > 1e-9) == workload.num_queries

    def test_include_total_adds_constant_row(self):
        workload = ParityWorkload(3, degree=1, include_total=True)
        assert np.array_equal(workload.matrix[0], np.ones(8))

    def test_rejects_bad_degree(self):
        with pytest.raises(WorkloadError):
            parity(3, 0)
        with pytest.raises(WorkloadError):
            parity(3, 4)
