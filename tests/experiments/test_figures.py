"""Smoke + shape tests for every figure/table experiment at a tiny scale.

These run each experiment end to end with a miniature profile and assert
the paper's *qualitative* findings, which is what EXPERIMENTS.md records.
"""

import numpy as np
import pytest

from repro.experiments import figure1, figure2, figure3a, figure3b, figure3c, figure4, table1
from repro.experiments.scale import Scale

TINY = Scale(
    name="tiny",
    domain_size=16,
    epsilons=(0.5, 2.0),
    domain_sizes=(8, 16),
    init_domain_size=8,
    init_output_factors=(2, 4),
    init_seeds=(0, 1),
    timing_domain_sizes=(8, 16),
    wnnls_num_users=500,
    wnnls_num_simulations=5,
    optimizer_iterations=150,
)


@pytest.fixture(scope="module")
def figure1_rows():
    return figure1.run(TINY)


@pytest.fixture(scope="module")
def figure2_rows():
    return figure2.run(TINY)


class TestFigure1:
    def test_row_count(self, figure1_rows):
        # 6 workloads x 2 epsilons x (7 mechanisms + lower bound).
        assert len(figure1_rows) == 6 * 2 * 8

    def test_optimized_best_everywhere(self, figure1_rows):
        for workload in {row.workload for row in figure1_rows}:
            for epsilon in (0.5, 2.0):
                cells = {
                    row.mechanism: row.samples
                    for row in figure1_rows
                    if row.workload == workload and row.epsilon == epsilon
                }
                bound = cells.pop("Lower Bound (Thm 5.6)")
                optimized = cells.pop("Optimized")
                best_competitor = min(cells.values())
                assert optimized <= best_competitor * 1.01, (workload, epsilon)
                assert optimized >= bound * (1 - 1e-9)

    def test_sample_complexity_decreases_with_epsilon(self, figure1_rows):
        for workload in {row.workload for row in figure1_rows}:
            for mechanism in ("Optimized", "Randomized Response"):
                values = [
                    row.samples
                    for row in figure1_rows
                    if row.workload == workload and row.mechanism == mechanism
                ]
                assert values[0] > values[-1]

    def test_render_contains_all_workloads(self, figure1_rows):
        text = figure1.render(figure1_rows)
        for name in ("Histogram", "Prefix", "AllRange", "Parity"):
            assert name in text


class TestFigure2:
    def test_row_count(self, figure2_rows):
        assert len(figure2_rows) == 6 * 2 * 7

    def test_optimized_best_at_each_size(self, figure2_rows):
        for domain_size in (8, 16):
            for workload in {row.workload for row in figure2_rows}:
                cells = {
                    row.mechanism: row.samples
                    for row in figure2_rows
                    if row.workload == workload and row.domain_size == domain_size
                }
                assert cells["Optimized"] <= min(cells.values()) * 1.01

    def test_slope_helper(self, figure2_rows):
        slope = figure2.loglog_slope(figure2_rows, "Prefix", "Randomized Response")
        assert np.isfinite(slope)
        assert slope > 0

    def test_histogram_flatter_than_prefix_for_optimized(self, figure2_rows):
        flat = figure2.loglog_slope(figure2_rows, "Histogram", "Optimized")
        steep = figure2.loglog_slope(figure2_rows, "Prefix", "Randomized Response")
        assert flat < steep


class TestFigure3a:
    def test_findings(self):
        rows = figure3a.run(TINY)
        datasets = {row.dataset for row in rows}
        assert datasets == {"HEPTH", "MEDCOST", "NETTRACE", "Worst-case"}
        # Optimized best on every dataset.
        for dataset in datasets:
            cells = {
                row.mechanism: row.samples for row in rows if row.dataset == dataset
            }
            assert cells["Optimized"] <= min(cells.values()) * 1.01
        # Data-dependent <= worst case for each mechanism.
        for mechanism in {row.mechanism for row in rows}:
            worst = [
                row.samples
                for row in rows
                if row.mechanism == mechanism and row.dataset == "Worst-case"
            ][0]
            for row in rows:
                if row.mechanism == mechanism and row.dataset != "Worst-case":
                    assert row.samples <= worst * 1.001

    def test_max_deviation_reported(self):
        rows = figure3a.run(TINY)
        assert figure3a.max_deviation(rows, "Optimized") >= 1.0


class TestFigure3b:
    def test_ratios_at_least_one(self):
        rows = figure3b.run(TINY)
        assert all(row.min_ratio >= 1.0 - 1e-9 for row in rows)
        assert all(row.max_ratio >= row.median_ratio >= row.min_ratio for row in rows)

    def test_covers_all_workloads_and_sizes(self):
        rows = figure3b.run(TINY)
        assert {row.workload for row in rows} == {
            "Histogram",
            "Prefix",
            "AllRange",
            "AllMarginals",
            "3-Way Marginals",
            "Parity",
        }
        assert {row.num_outputs for row in rows} == {16, 32}


class TestFigure3c:
    def test_timings_positive_and_growing(self):
        rows = figure3c.run(TINY, repeats=2)
        times = [row.seconds_per_iteration for row in rows]
        assert all(t > 0 for t in times)
        assert times[-1] > times[0] * 0.5  # larger n should not be much faster

    def test_render_mentions_exponent(self):
        rows = figure3c.run(TINY, repeats=1)
        assert "growth exponent" in figure3c.render(rows)


class TestFigure4:
    def test_wnnls_never_hurts(self):
        rows = figure4.run(TINY, seed=0)
        assert len(rows) == 6
        for row in rows:
            assert row.wnnls_variance <= row.default_variance * 1.001
            assert row.improvement >= 0.999

    def test_render(self):
        rows = figure4.run(TINY, seed=0)
        assert "improvement" in figure4.render(rows)


class TestTable1:
    def test_all_encodings_verified(self):
        rows = table1.run(domain_size=6, epsilon=1.0)
        assert len(rows) == 4
        assert all(row.satisfied for row in rows)

    def test_two_level_mechanisms(self):
        rows = {row.mechanism: row for row in table1.run(6, 1.0)}
        assert rows["Randomized Response"].distinct_entry_levels == 2
        assert rows["Hadamard"].distinct_entry_levels == 2
        assert rows["Subset Selection"].distinct_entry_levels == 2
        assert rows["RAPPOR"].distinct_entry_levels == 7  # n + 1 levels
