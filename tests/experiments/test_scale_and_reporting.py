"""Tests for experiment scaffolding (scale profiles, reporting)."""

import pytest

from repro.exceptions import ReproError
from repro.experiments.reporting import format_table, format_value, pivot
from repro.experiments.scale import current_scale, scale_by_name


class TestScale:
    def test_default_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "ci"

    def test_env_selects_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale().name == "paper"
        assert current_scale().domain_size == 512

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ReproError):
            current_scale()

    def test_scale_by_name(self):
        assert scale_by_name("paper").epsilons[0] == 0.5
        with pytest.raises(ReproError):
            scale_by_name("nope")

    def test_paper_profile_matches_paper_parameters(self):
        paper = scale_by_name("paper")
        assert paper.domain_size == 512
        assert paper.init_domain_size == 64
        assert len(paper.init_seeds) == 10
        assert paper.wnnls_num_simulations == 100
        assert 4096 in paper.timing_domain_sizes


class TestFormatting:
    def test_format_value_styles(self):
        assert format_value(float("inf")) == "inf"
        assert format_value(1234567.0) == "1.235e+06"
        assert format_value(0.25) == "0.25"
        assert format_value(123.456) == "123.5"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_pivot(self):
        rows = [
            {"m": "A", "eps": 0.5, "v": 1.0},
            {"m": "A", "eps": 1.0, "v": 2.0},
            {"m": "B", "eps": 0.5, "v": 3.0},
        ]
        headers, table = pivot(rows, "m", "eps", "v")
        assert headers == ["m", "0.5", "1.0"]
        assert table[0] == ["A", 1.0, 2.0]
        assert table[1] == ["B", 3.0, "-"]
