"""Tests for the CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_lists_all_experiments(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "figure1",
            "figure2",
            "figure3a",
            "figure3b",
            "figure3c",
            "figure4",
        }

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure9"])

    def test_scale_option(self):
        arguments = build_parser().parse_args(["run", "table1", "--scale", "paper"])
        assert arguments.scale == "paper"

    def test_plan_defaults(self):
        arguments = build_parser().parse_args(["plan"])
        assert arguments.workload == "Prefix"
        assert arguments.domain == 64

    def test_protocol_run_options(self):
        arguments = build_parser().parse_args(
            [
                "protocol",
                "run",
                "--shards",
                "4",
                "--workers",
                "2",
                "--backend",
                "thread",
                "--message-level",
            ]
        )
        assert arguments.command == "protocol"
        assert arguments.protocol_command == "run"
        assert arguments.shards == 4
        assert arguments.workers == 2
        assert arguments.backend == "thread"
        assert arguments.message_level

    def test_protocol_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["protocol", "run", "--backend", "gpu"])


class TestMain:
    def test_runs_table1_shorthand(self, capsys, monkeypatch):
        # `python -m repro table1` still works without the `run` prefix.
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "RAPPOR" in output
        assert "scale=ci" in output

    def test_runs_table1_explicit(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["run", "table1"]) == 0
        assert "RAPPOR" in capsys.readouterr().out

    def test_scale_flag_sets_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        main(["run", "table1", "--scale", "ci"])
        import os

        assert os.environ["REPRO_SCALE"] == "ci"

    def test_plan_reports_mechanisms(self, capsys):
        assert (
            main(
                [
                    "plan",
                    "--workload",
                    "Histogram",
                    "--domain",
                    "8",
                    "--users",
                    "10000",
                    "--iterations",
                    "60",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Optimized" in output
        assert "min epsilon" in output

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro" in capsys.readouterr().out

    def test_protocol_run_sharded(self, capsys):
        assert (
            main(
                [
                    "protocol",
                    "run",
                    "--workload",
                    "Histogram",
                    "--domain",
                    "8",
                    "--users",
                    "20000",
                    "--shards",
                    "4",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "20,000 reports over 4 shard(s)" in output
        assert "users/sec" in output
