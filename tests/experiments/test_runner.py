"""Tests for the shared experiment runner helpers."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.experiments.runner import (
    MECHANISM_ORDER,
    mechanism_roster,
    paper_workloads,
    protocol_session,
    safe_sample_complexity,
)
from repro.workloads import histogram


class TestRoster:
    def test_legend_order(self):
        roster = mechanism_roster(optimizer_iterations=10)
        assert tuple(m.name for m in roster) == MECHANISM_ORDER

    def test_optimized_last(self):
        roster = mechanism_roster(optimizer_iterations=10)
        assert roster[-1].name == "Optimized"


class TestPaperWorkloads:
    def test_six_workloads(self):
        workloads = paper_workloads(16)
        assert len(workloads) == 6
        assert all(w.domain_size == 16 for w in workloads)


class TestSafeSampleComplexity:
    def test_finite_for_valid_pair(self):
        roster = mechanism_roster(optimizer_iterations=30)
        value = safe_sample_complexity(roster[0], histogram(8), 1.0)
        assert np.isfinite(value)

    def test_infinite_for_unsupported_domain(self):
        # Fourier on a non-power-of-two domain raises internally; the sweep
        # records inf instead of aborting.
        roster = mechanism_roster(optimizer_iterations=30)
        fourier = [m for m in roster if m.name == "Fourier"][0]
        assert safe_sample_complexity(fourier, histogram(12), 1.0) == np.inf

    def test_distribution_variant(self):
        roster = mechanism_roster(optimizer_iterations=30)
        value = safe_sample_complexity(
            roster[0], histogram(8), 1.0, distribution=np.full(8, 1 / 8)
        )
        assert np.isfinite(value)


class TestProtocolSessionHelper:
    def test_binds_strategy_and_cached_operator(self):
        roster = mechanism_roster(optimizer_iterations=30)
        mechanism = roster[0]  # Randomized Response
        workload = histogram(8)
        session = protocol_session(mechanism, workload, 1.0)
        assert session.epsilon == 1.0
        assert session.operator is mechanism.reconstruction_for(workload, 1.0)
        result = session.run(np.full(8, 50.0), num_shards=2, seed=0)
        assert result.num_users == 400

    def test_rejects_additive_noise_mechanisms(self):
        roster = mechanism_roster(optimizer_iterations=30)
        gaussian = [m for m in roster if m.name == "Matrix Mechanism (L2)"][0]
        with pytest.raises(ProtocolError):
            protocol_session(gaussian, histogram(8), 1.0)
