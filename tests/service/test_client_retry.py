"""Client-side retry/backoff against a scripted socket server.

The rules under test: connection errors retry idempotent GETs only; HTTP
503 retries *every* method (the server refused or shed the request
before folding it, so a resend cannot double-count); other 5xx retry
GETs only; ``retries=0`` restores fail-fast.
"""

import json
import socket
import threading

import pytest

from repro.exceptions import ServiceHTTPError
from repro.service import ServiceClient


class ScriptedServer:
    """A real listening socket that answers each connection's requests
    from a fixed script of (status, body) tuples, recording what arrives."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(10.0)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while self.script:
            try:
                connection, _ = self._listener.accept()
            except (OSError, socket.timeout):
                return
            with connection:
                connection.settimeout(10.0)
                while self.script:
                    try:
                        request = self._read_request(connection)
                    except (OSError, socket.timeout, ValueError):
                        break  # client reconnects after a drop
                    if request is None:
                        break
                    self.requests.append(request)
                    status, body = self.script.pop(0)
                    if status is None:
                        # scripted connection drop, mid-request
                        break
                    payload = json.dumps(body).encode()
                    reason = {200: "OK", 500: "Error", 503: "Unavailable"}
                    connection.sendall(
                        f"HTTP/1.1 {status} {reason.get(status, 'X')}\r\n"
                        f"Content-Type: application/json\r\n"
                        f"Content-Length: {len(payload)}\r\n\r\n".encode()
                        + payload
                    )

    def _read_request(self, connection):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = connection.recv(4096)
            if not chunk:
                return None
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        method, path, _ = lines[0].split(" ", 2)
        length = 0
        for line in lines[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        while len(rest) < length:
            rest += connection.recv(4096)
        return (method, path, rest[:length])

    def close(self):
        self._listener.close()
        self._thread.join(timeout=10)


def make_client(port, **kwargs):
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("retry_base", 0.01)  # keep test backoffs tiny
    return ServiceClient("127.0.0.1", port, timeout=10.0, **kwargs)


def test_post_retries_on_503_and_succeeds(tmp_path):
    server = ScriptedServer(
        [
            (503, {"error": "degraded"}),
            (503, {"error": "degraded"}),
            (200, {"accepted": 3}),
        ]
    )
    try:
        client = make_client(server.port)
        result = client.send_reports("demo", [1, 2, 3])
        assert result["accepted"] == 3
        client.close()
    finally:
        server.close()
    posts = [r for r in server.requests if r[0] == "POST"]
    assert len(posts) == 3
    assert posts[0][2] == posts[1][2] == posts[2][2]  # identical resends


def test_post_does_not_retry_other_5xx():
    server = ScriptedServer([(500, {"error": "boom"})])
    try:
        client = make_client(server.port)
        with pytest.raises(ServiceHTTPError, match="500"):
            client.send_reports("demo", [1])
        client.close()
    finally:
        server.close()
    assert len(server.requests) == 1


def test_get_retries_on_500():
    server = ScriptedServer(
        [(500, {"error": "boom"}), (200, {"status": "ok"})]
    )
    try:
        client = make_client(server.port)
        assert client.healthz()["status"] == "ok"
        client.close()
    finally:
        server.close()
    assert len(server.requests) == 2


def test_get_retries_on_connection_drop():
    server = ScriptedServer([(None, None), (200, {"status": "ok"})])
    try:
        client = make_client(server.port)
        assert client.healthz()["status"] == "ok"
        client.close()
    finally:
        server.close()
    assert len(server.requests) == 2


def test_post_does_not_retry_connection_drop():
    """A dropped POST is ambiguous — the server may have folded it — so
    the client must surface the error, never silently resend."""
    server = ScriptedServer([(None, None), (200, {"accepted": 1})])
    try:
        client = make_client(server.port)
        with pytest.raises(OSError):
            client.send_reports("demo", [1])
        client.close()
    finally:
        server.close()
    assert len(server.requests) == 1


def test_retries_zero_fails_fast():
    server = ScriptedServer([(503, {"error": "degraded"})])
    try:
        client = make_client(server.port, retries=0)
        with pytest.raises(ServiceHTTPError, match="503"):
            client.send_reports("demo", [1])
        client.close()
    finally:
        server.close()
    assert len(server.requests) == 1


def test_rejects_negative_retries():
    with pytest.raises(Exception, match="retries"):
        ServiceClient(retries=-1)
