"""Binary ingest framing: round trips, packing widths, damage handling."""

import struct

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service.framing import (
    FRAME_MAGIC,
    KIND_HISTOGRAM,
    KIND_REPORTS,
    decode_frame,
    decode_frames,
    encode_histogram,
    encode_reports,
    unpack_reports,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "reports,item_size",
        [
            ([0, 1, 255], 1),
            ([0, 256, 65535], 2),
            ([0, 65536, 2**31], 4),
        ],
    )
    def test_reports_pack_in_smallest_width(self, reports, item_size):
        frame = decode_frame(encode_reports("demo", reports))
        assert frame.kind == KIND_REPORTS
        assert frame.campaign == "demo"
        assert frame.item_size == item_size
        assert frame.count == len(reports)
        assert frame.reports().tolist() == reports
        assert frame.reports().dtype == np.int64

    def test_numpy_input_round_trips(self, rng):
        reports = rng.integers(0, 500, size=1000)
        frame = decode_frame(encode_reports("c", reports))
        assert np.array_equal(frame.reports(), reports)

    def test_histogram_round_trips_exactly(self):
        histogram = [5.0, 0.0, 2.5, 1e12]
        frame = decode_frame(encode_histogram("demo", histogram))
        assert frame.kind == KIND_HISTOGRAM
        assert frame.histogram().tolist() == histogram

    def test_multiple_frames_pack_back_to_back(self):
        buffer = (
            encode_reports("a", [1, 2])
            + encode_histogram("b", [1.0, 0.0])
            + encode_reports("a", [3])
        )
        frames = decode_frames(buffer)
        assert [(f.campaign, f.kind, f.count) for f in frames] == [
            ("a", KIND_REPORTS, 2),
            ("b", KIND_HISTOGRAM, 2),
            ("a", KIND_REPORTS, 1),
        ]

    def test_binary_is_smaller_than_json(self):
        reports = list(range(256)) * 4
        as_json = len(str(reports))
        as_frame = len(encode_reports("demo", reports))
        assert as_frame < as_json / 2

    def test_wrong_kind_accessors_refuse(self):
        reports = decode_frame(encode_reports("a", [1]))
        histogram = decode_frame(encode_histogram("a", [1.0]))
        with pytest.raises(ServiceError, match="histogram"):
            histogram.reports()
        with pytest.raises(ServiceError, match="report batch"):
            reports.histogram()


class TestEncodeValidation:
    def test_negative_reports_rejected(self):
        with pytest.raises(ServiceError, match="non-negative"):
            encode_reports("demo", [0, -1])

    def test_non_integer_reports_rejected(self):
        with pytest.raises(ServiceError, match="integer"):
            encode_reports("demo", [0.5])

    def test_empty_batch_rejected(self):
        with pytest.raises(ServiceError, match="non-empty"):
            encode_reports("demo", [])

    def test_oversized_output_id_rejected(self):
        with pytest.raises(ServiceError, match="32-bit"):
            encode_reports("demo", [2**40])

    def test_empty_campaign_name_rejected(self):
        with pytest.raises(ServiceError, match="campaign name"):
            encode_reports("", [1])

    def test_overlong_campaign_name_rejected(self):
        with pytest.raises(ServiceError, match="campaign name"):
            encode_reports("x" * 300, [1])


class TestDecodeValidation:
    def test_bad_magic_fails_loudly(self):
        payload = bytearray(encode_reports("demo", [1]))
        payload[:4] = b"NOPE"
        with pytest.raises(ServiceError, match="magic"):
            decode_frame(bytes(payload))

    def test_future_version_fails_loudly(self):
        payload = bytearray(encode_reports("demo", [1]))
        payload[4] = 99
        with pytest.raises(ServiceError, match="version 99"):
            decode_frame(bytes(payload))

    def test_unknown_kind_rejected(self):
        payload = bytearray(encode_reports("demo", [1]))
        payload[5] = 7
        with pytest.raises(ServiceError, match="kind"):
            decode_frame(bytes(payload))

    def test_truncated_header_rejected(self):
        with pytest.raises(ServiceError, match="truncated"):
            decode_frame(FRAME_MAGIC + b"\x01")

    def test_truncated_body_rejected(self):
        payload = encode_reports("demo", list(range(100)))
        with pytest.raises(ServiceError, match="truncated"):
            decode_frame(payload[:-10])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ServiceError, match="trailing"):
            decode_frame(encode_reports("demo", [1]) + b"junk")

    def test_inconsistent_body_length_rejected(self):
        payload = bytearray(encode_reports("demo", [1, 2, 3]))
        # Overwrite the u32 body-length field (offset 12) with a lie.
        payload[12:16] = struct.pack("<I", 9999)
        with pytest.raises(ServiceError, match="disagrees"):
            decode_frame(bytes(payload))

    def test_non_utf8_name_rejected(self):
        payload = bytearray(encode_reports("demé", [1]))
        # Corrupt one byte of the UTF-8 name (name starts at offset 24).
        payload[24] = 0xFF
        with pytest.raises(ServiceError, match="UTF-8"):
            decode_frame(bytes(payload))

    def test_empty_body_rejected(self):
        with pytest.raises(ServiceError, match="empty"):
            decode_frames(b"")

    def test_unpack_reports_validates_item_size(self):
        with pytest.raises(ServiceError, match="item size"):
            unpack_reports(b"\x00\x00", 3)
        with pytest.raises(ServiceError, match="multiple"):
            unpack_reports(b"\x00\x00\x00", 2)


class TestRoundTags:
    def test_round_id_round_trips(self):
        frame = decode_frame(encode_reports("demo", [1, 2], round_id=3))
        assert frame.round_id == 3
        histogram = decode_frame(encode_histogram("demo", [1.0, 0.0], round_id=7))
        assert histogram.round_id == 7

    def test_default_round_is_zero(self):
        assert decode_frame(encode_reports("demo", [1])).round_id == 0

    def test_untagged_frame_is_byte_identical_to_pre_round_format(self):
        # round 0 lands in what used to be a reserved zero pad byte, so
        # old decoders keep accepting untagged frames unchanged
        tagged = encode_reports("demo", [1, 2, 3], round_id=0)
        assert tagged == encode_reports("demo", [1, 2, 3])
        assert tagged[7] == 0

    def test_round_tag_occupies_header_byte_seven(self):
        assert encode_reports("demo", [1], round_id=9)[7] == 9

    def test_out_of_range_rounds_rejected(self):
        from repro.service.framing import MAX_FRAME_ROUND

        with pytest.raises(ServiceError, match="round"):
            encode_reports("demo", [1], round_id=MAX_FRAME_ROUND + 1)
        with pytest.raises(ServiceError, match="round"):
            encode_reports("demo", [1], round_id=-1)


class TestTraceField:
    def test_trace_id_round_trips_on_both_kinds(self):
        trace = "deadbeefcafef00d"
        frame = decode_frame(encode_reports("demo", [1, 2], trace_id=trace))
        assert frame.trace_id == trace
        histogram = decode_frame(
            encode_histogram("demo", [1.0, 0.0], trace_id=trace)
        )
        assert histogram.trace_id == trace

    def test_traceless_frame_is_byte_identical_to_pre_trace_format(self):
        # trace length lands in what version 1 reserved as zero padding,
        # so a frame with no trace attached must not change by a byte
        plain = encode_reports("demo", [1, 2, 3])
        assert encode_reports("demo", [1, 2, 3], trace_id=None) == plain
        assert encode_reports("demo", [1, 2, 3], trace_id="") == plain
        assert plain[10:12] == b"\x00\x00"

    def test_trace_rides_after_the_body(self):
        trace = "ab" * 8
        traced = encode_reports("demo", [1, 2], trace_id=trace)
        plain = encode_reports("demo", [1, 2])
        assert traced.endswith(trace.encode("ascii"))
        assert len(traced) == len(plain) + len(trace)
        # body length (offset 12) excludes the trace bytes
        assert traced[12:16] == plain[12:16]

    def test_traced_frames_concatenate_back_to_back(self):
        buffer = encode_reports("a", [1], trace_id="00" * 8) + encode_reports(
            "b", [2, 3]
        )
        frames = decode_frames(buffer)
        assert [f.trace_id for f in frames] == ["00" * 8, ""]
        assert [f.campaign for f in frames] == ["a", "b"]

    def test_oversized_trace_rejected_on_encode_and_decode(self):
        with pytest.raises(ServiceError, match="trace"):
            encode_reports("demo", [1], trace_id="x" * 65)
        frame = bytearray(encode_reports("demo", [1]))
        struct.pack_into("<H", frame, 10, 65)  # lie about the trace length
        with pytest.raises(ServiceError, match="trace"):
            decode_frame(bytes(frame) + b"x" * 65)

    def test_truncated_trace_rejected(self):
        traced = encode_reports("demo", [1], trace_id="ab" * 8)
        with pytest.raises(ServiceError, match="truncated"):
            decode_frame(traced[:-3])

    def test_non_utf8_trace_rejected(self):
        traced = bytearray(encode_reports("demo", [1], trace_id="ab" * 8))
        traced[-1] = 0xFF
        with pytest.raises(ServiceError, match="not UTF-8"):
            decode_frame(bytes(traced))
