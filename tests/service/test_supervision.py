"""Self-healing supervision + WAL recovery: the zero-loss contract.

With a WAL under it the pool stops being loud-but-fragile: a SIGKILLed
worker respawns, restores its shard from the last checkpoint cut plus a
replay of exactly the records routed to it, and the service answers
bit-identically to a serial fold — no acked report lost, none counted
twice.  Budget exhaustion is the only path left to ``degraded``.

Worker processes are spawned (interpreter + numpy import each), so these
tests keep worker counts and batch sizes small.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service import (
    CollectionService,
    ServiceClient,
    ServiceThread,
    WorkerPool,
)

NUM_OUTPUTS = 8


def batches(seed=0, count=10, size=40):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, NUM_OUTPUTS, size=size).astype(np.int64)
        for _ in range(count)
    ]


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("cluster_workers", 2)
    kwargs.setdefault("flush_interval", 0.02)
    kwargs.setdefault("checkpoint_dir", tmp_path / "ckpt")
    kwargs.setdefault("checkpoint_interval", 3600.0)
    kwargs.setdefault("wal_dir", tmp_path / "wal")
    return CollectionService(**kwargs)


def create_demo(client):
    client.create_campaign(
        "demo",
        workload="Histogram",
        domain_size=NUM_OUTPUTS,
        epsilon=1.0,
        mechanism="Randomized Response",
    )


def serial_reference(all_batches):
    """The same reports folded by a single-process service."""
    single = CollectionService(flush_interval=0.02)
    with ServiceThread(single) as (host, port):
        client = ServiceClient(host, port)
        create_demo(client)
        for batch in all_batches:
            client.send_reports("demo", batch)
        answer = client.query("demo", sync=True)
        client.close()
    return answer


def wait_for_health(client, status="ok", timeout=15.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        try:
            health = client.healthz()
        except ServiceError:
            health = None  # 503 while degraded
        if health is not None and health["status"] == status:
            return health
        time.sleep(0.05)
    raise AssertionError(f"service never reached health {status!r}")


def test_supervised_flag_requires_wal():
    pool = WorkerPool(1)
    assert not pool.supervised  # WAL-less pools keep the loud behavior


def test_sigkill_heals_without_losing_acked_reports(tmp_path):
    """Kill a worker mid-stream: the pool respawns it, replays its routed
    records from the WAL, and the final answer is bit-identical to a
    serial fold of every acked batch."""
    service = make_service(tmp_path)
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    create_demo(client)
    all_batches = batches(seed=11)
    try:
        for index, batch in enumerate(all_batches):
            client.send_reports("demo", batch)
            if index == 4:
                os.kill(service.pool.worker_pids()[0], signal.SIGKILL)
        health = wait_for_health(client)
        assert health["worker_restarts"] >= 1
        assert health["workers_alive"] == 2
        answer = client.query("demo", sync=True)
    finally:
        client.close()
        thread.stop(final_checkpoint=False)

    reference = serial_reference(all_batches)
    assert answer["num_reports"] == reference["num_reports"]
    assert answer["estimates"] == reference["estimates"]
    assert answer["standard_errors"] == reference["standard_errors"]


def test_restart_budget_exhaustion_degrades(tmp_path):
    """A zero restart budget turns the first worker death into permanent
    degradation — supervision never loops forever on a crashing worker."""
    service = make_service(tmp_path, worker_restart_limit=0)
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    create_demo(client)
    try:
        client.send_reports("demo", [0, 1, 2])
        os.kill(service.pool.worker_pids()[0], signal.SIGKILL)
        deadline = time.time() + 15
        while service.pool.health != "degraded" and time.time() < deadline:
            time.sleep(0.05)
        assert service.pool.health == "degraded"
        with pytest.raises(ServiceError, match="degraded"):
            client.healthz()
        with pytest.raises(ServiceError, match="restart budget"):
            client.send_reports("demo", [3])
    finally:
        client.close()
        thread.stop(final_checkpoint=False)


def test_checkpoint_cuts_and_truncates_wal(tmp_path):
    """A successful checkpoint records its WAL coverage point and removes
    the covered segments; recovery from crash replays only the suffix."""
    service = make_service(tmp_path)
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    create_demo(client)
    before = batches(seed=21, count=4)
    after = batches(seed=22, count=3)
    try:
        for batch in before:
            client.send_reports("demo", batch)
        client.checkpoint()
        wal_stats = client.metrics()["wal"]
        assert wal_stats["truncations"] >= 1
        assert wal_stats["segments"] <= 1
        for batch in after:
            client.send_reports("demo", batch)
    finally:
        client.close()
        thread.stop(final_checkpoint=False)  # crash: suffix only in WAL

    recovered = make_service(tmp_path)
    with ServiceThread(recovered) as (host, port):
        replayed = ServiceClient(host, port)
        answer = replayed.query("demo", sync=True)
        replayed.close()
    reference = serial_reference(before + after)
    assert answer["num_reports"] == reference["num_reports"]
    assert answer["estimates"] == reference["estimates"]


def test_pipeline_mode_wal_crash_recovery_is_bit_identical(tmp_path):
    """The WAL also covers the single-process pipeline: a crash between
    checkpoints loses nothing."""
    service = make_service(tmp_path, cluster_workers=0)
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    create_demo(client)
    all_batches = batches(seed=31, count=6)
    try:
        for batch in all_batches:
            client.send_reports("demo", batch)
    finally:
        client.close()
        thread.stop(final_checkpoint=False)

    recovered = make_service(tmp_path, cluster_workers=0)
    with ServiceThread(recovered) as (host, port):
        replayed = ServiceClient(host, port)
        answer = replayed.query("demo", sync=True)
        metrics = replayed.metrics()
        assert metrics["wal"]["startup_replayed"] == len(all_batches)
        replayed.close()
    reference = serial_reference(all_batches)
    assert answer["num_reports"] == reference["num_reports"]
    assert answer["estimates"] == reference["estimates"]


def test_failed_checkpoint_fsync_keeps_wal_coverage(tmp_path):
    """An injected checkpoint fsync failure surfaces as a server error but
    loses nothing: the WAL is not truncated past a checkpoint that never
    became durable, and the next checkpoint succeeds."""
    # save #1 is the campaign-creation checkpoint; #2 is ours below
    plan = '{"faults": [{"action": "fail_checkpoint_fsync", "at": 2}]}'
    service = make_service(tmp_path, fault_plan=plan)
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    create_demo(client)
    all_batches = batches(seed=41, count=4)
    try:
        for batch in all_batches:
            client.send_reports("demo", batch)
        with pytest.raises(ServiceError, match="fsync"):
            client.checkpoint()
        # nothing was truncated on the failed save
        assert client.metrics()["wal"]["truncations"] == 0
        client.checkpoint()  # the fault armed once; this one lands
        assert client.metrics()["wal"]["truncations"] >= 1
    finally:
        client.close()
        thread.stop(final_checkpoint=False)

    recovered = make_service(tmp_path)
    with ServiceThread(recovered) as (host, port):
        replayed = ServiceClient(host, port)
        answer = replayed.query("demo", sync=True)
        replayed.close()
    reference = serial_reference(all_batches)
    assert answer["num_reports"] == reference["num_reports"]
    assert answer["estimates"] == reference["estimates"]


def test_drop_reply_mid_cut_retries_the_checkpoint(tmp_path):
    """A worker dying *during* the checkpoint cut (after computing it,
    before acking) is the worst case: the coordinator retries the cut
    after the respawn, and the rebuilt shard makes the retry exact.

    Each worker counts its own ops: cut #1 is the campaign-creation
    checkpoint, cut #2 is the explicit one below — every original worker
    dies mid-cut *with real shard data*, and the respawned replacements
    (spawned without the plan) let the retry land."""
    plan = '{"faults": [{"action": "drop_reply", "at": 2, "op": "cut"}]}'
    service = make_service(tmp_path, fault_plan=plan)
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    create_demo(client)
    all_batches = batches(seed=51, count=6)
    try:
        for batch in all_batches:
            client.send_reports("demo", batch)
        client.checkpoint()  # survives the mid-cut death
        health = wait_for_health(client)
        assert health["worker_restarts"] >= 1
        answer = client.query("demo", sync=True)
    finally:
        client.close()
        thread.stop(final_checkpoint=False)

    reference = serial_reference(all_batches)
    assert answer["num_reports"] == reference["num_reports"]
    assert answer["estimates"] == reference["estimates"]

    # and the checkpoint that finally landed recovers bit-identically
    recovered = make_service(tmp_path)
    with ServiceThread(recovered) as (host, port):
        replayed = ServiceClient(host, port)
        final = replayed.query("demo", sync=True)
        assert final["num_reports"] == reference["num_reports"]
        assert final["estimates"] == reference["estimates"]
        replayed.close()
