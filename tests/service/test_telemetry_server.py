"""End-to-end telemetry tests: the Prometheus exposition endpoint, trace
propagation through real ingest requests, monotonic uptime, and the
cluster-mode aggregation of per-worker metrics."""

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service import (
    CollectionService,
    ServiceClient,
    ServiceThread,
)
from repro.telemetry import Histogram, is_trace_id

from tests.telemetry.test_metrics import assert_valid_exposition


@pytest.fixture
def live():
    service = CollectionService(flush_interval=0.02, flush_reports=512)
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    try:
        yield service, client
    finally:
        client.close()
        thread.stop()


def make_campaign(client, name="demo", domain_size=8, epsilon=1.0):
    return client.create_campaign(
        name,
        workload="Histogram",
        domain_size=domain_size,
        epsilon=epsilon,
        mechanism="Randomized Response",
    )


def sample_lines(text):
    return [
        line
        for line in text.splitlines()
        if line and not line.startswith("#")
    ]


def sample_value(text, prefix):
    """The value of the unique sample line starting with ``prefix``."""
    matches = [line for line in sample_lines(text) if line.startswith(prefix)]
    assert len(matches) == 1, f"{prefix!r} matched {matches}"
    return float(matches[0].rsplit(" ", 1)[1])


class TestPrometheusEndpoint:
    def test_exposition_is_valid_and_covers_the_ingest_path(self, live):
        _, client = live
        make_campaign(client)
        client.send_reports("demo", [1, 2, 3, 3])
        client.query("demo", sync=True)
        client.strategy("demo")  # a campaign-named route, for label checks
        text = client.prometheus_metrics()
        assert_valid_exposition(text)
        assert sample_value(text, "repro_uptime_seconds ") >= 0.0
        assert sample_value(text, "repro_ingest_latency_seconds_count ") >= 1
        assert sample_value(text, "repro_ingest_reports_total ") == 4
        assert sample_value(text, 'repro_campaign_reports{campaign="demo"} ') == 4
        # The normalized route label keeps campaign names out of the
        # label space while staying well-formed exposition.
        assert 'path="/v1/campaigns/{name}/strategy"' in text
        assert "campaigns/demo" not in text
        # Span durations from the ingest trace land labeled by stage.
        for span in ("ingest", "decode", "fold"):
            assert (
                sample_value(
                    text, f'repro_span_duration_seconds_count{{span="{span}"}} '
                )
                >= 1
            )

    def test_unknown_format_is_a_400(self, live):
        _, client = live
        with pytest.raises(ServiceError, match="unknown metrics format"):
            client._request("GET", "/v1/metrics?format=xml")

    def test_json_document_carries_telemetry_families(self, live):
        _, client = live
        make_campaign(client)
        client.send_reports("demo", [0, 1])
        client.query("demo", sync=True)
        metrics = client.metrics()
        telemetry = metrics["telemetry"]
        latency = telemetry["repro_ingest_latency_seconds"]
        assert latency["count"] >= 1
        assert set(latency) == {"count", "sum", "p50", "p95", "p99"}
        requests = telemetry["repro_http_requests_total"]
        assert any(
            row["labels"]["path"] == "/v1/reports" and row["value"] >= 1
            for row in requests
        )

    def test_uptime_is_monotonic_and_in_healthz(self, live):
        _, client = live
        first = client.healthz()["uptime_seconds"]
        second = client.metrics()["uptime_seconds"]
        third = client.healthz()["uptime_seconds"]
        assert 0.0 <= first <= second <= third


class TestTracePropagation:
    def test_json_ingest_echoes_the_client_minted_trace(self, live):
        service, client = live
        make_campaign(client)
        traced = ServiceClient(client.host, client.port, trace=True)
        try:
            response = traced.send_reports("demo", [1, 2])
            assert is_trace_id(traced.last_trace_id)
            assert response["trace"] == traced.last_trace_id
            # The fold span lands when the flush worker drains the queue.
            traced.query("demo", sync=True)
            spans = service.tracer.trace(traced.last_trace_id)
            assert {s.name for s in spans} >= {"ingest", "fold"}
        finally:
            traced.close()

    def test_binary_ingest_echoes_the_trace_too(self, live):
        _, client = live
        make_campaign(client)
        traced = ServiceClient(
            client.host, client.port, trace=True, transport="binary"
        )
        try:
            response = traced.send_reports("demo", [3, 3, 3])
            assert response["trace"] == traced.last_trace_id
            assert response["accepted"] == 3
        finally:
            traced.close()

    def test_untraced_requests_still_mint_server_side(self, live):
        service, client = live
        make_campaign(client)
        response = client.send_reports("demo", [0])
        assert is_trace_id(response["trace"])
        assert client.last_trace_id == ""

    def test_tracing_can_be_disabled_without_changing_estimates(self):
        service = CollectionService(
            flush_interval=0.02, flush_reports=512, tracing=False
        )
        thread = ServiceThread(service)
        host, port = thread.start()
        client = ServiceClient(host, port)
        try:
            make_campaign(client)
            response = client.send_reports("demo", [1, 2, 3])
            assert response["accepted"] == 3
            assert "trace" not in response
            assert service.tracer.recent() == []
            text = client.prometheus_metrics()
            assert_valid_exposition(text)
        finally:
            client.close()
            thread.stop()


class TestClusterAggregation:
    """Satellite invariant: per-worker counters sum and per-worker fold
    histograms merge order-independently at the coordinator."""

    @pytest.fixture
    def cluster(self, tmp_path):
        service = CollectionService(
            cluster_workers=2,
            flush_interval=0.02,
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_interval=3600.0,
        )
        thread = ServiceThread(service)
        host, port = thread.start()
        client = ServiceClient(host, port)
        make_campaign(client)
        try:
            yield service, client
        finally:
            client.close()
            try:
                thread.stop(final_checkpoint=False)
            except Exception:
                pass

    def test_worker_counters_sum_and_histograms_merge(self, cluster):
        _, client = cluster
        rng = np.random.default_rng(7)
        total = 0
        for _ in range(6):
            batch = rng.integers(0, 8, size=40)
            total += client.send_reports("demo", batch.tolist())["accepted"]
        client.query("demo", sync=True)

        metrics = client.metrics()
        workers = metrics["cluster"]["workers"]
        assert len(workers) == 2
        assert metrics["cluster"]["workers_alive"] == 2
        per_worker = [row["ingest"]["ingested"] for row in workers]
        assert sum(per_worker) == total == 240
        # Both workers did real work (round-robin dispatch).
        assert all(count > 0 for count in per_worker)

        snapshots = [row["fold_seconds"] for row in workers]
        assert all(snap is not None for snap in snapshots)
        bounds = tuple(snapshots[0]["bounds"])
        forward = Histogram(bounds=bounds)
        backward = Histogram(bounds=bounds)
        for snap in snapshots:
            forward.merge_snapshot(snap)
        for snap in reversed(snapshots):
            backward.merge_snapshot(snap)
        assert forward.snapshot() == backward.snapshot()
        assert forward.count == sum(snap["count"] for snap in snapshots)

        # The scrape endpoint serves exactly that merged view.
        text = client.prometheus_metrics()
        assert_valid_exposition(text)
        assert sample_value(text, "repro_ingest_reports_total ") == total
        assert (
            sample_value(text, "repro_ingest_fold_seconds_count ")
            == forward.count
        )
        assert sample_value(text, "repro_cluster_workers_alive ") == 2
