"""Multi-process scale-out tier: fold equivalence, transports, crashes.

The expensive invariants live here: a worker pool folding the same
batches as a single process must answer bit-identically, and killing a
worker mid-stream must degrade loudly and recover exactly from the last
coordinated checkpoint.  Worker processes are spawned (interpreter +
numpy import each), so the tests keep worker counts and batch sizes
small.
"""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.protocol.engine import ShardAccumulator
from repro.service import (
    CollectionService,
    ServiceClient,
    ServiceThread,
    ShardManager,
    WorkerPool,
)
from repro.service.framing import encode_reports

NUM_OUTPUTS = 8


def batches(seed=0, count=12, size=50):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, NUM_OUTPUTS, size=size).astype(np.int64)
        for _ in range(count)
    ]


def serial_fold(all_batches):
    accumulator = ShardAccumulator(NUM_OUTPUTS)
    for batch in all_batches:
        accumulator.add_reports(batch)
    return accumulator


class TestShardManager:
    def test_open_get_and_idempotent_reopen(self):
        manager = ShardManager()
        manager.open("demo", NUM_OUTPUTS)
        manager.open("demo", NUM_OUTPUTS)  # reopen with same shape is a no-op
        assert len(manager) == 1
        assert manager.get("demo").session.num_outputs == NUM_OUTPUTS
        assert manager.get("demo").session.new_accumulator().num_outputs == 8

    def test_reopen_with_different_shape_rejected(self):
        manager = ShardManager()
        manager.open("demo", NUM_OUTPUTS)
        with pytest.raises(ServiceError, match="already open"):
            manager.open("demo", NUM_OUTPUTS + 1)

    def test_unknown_campaign_rejected(self):
        with pytest.raises(ServiceError, match="unknown campaign"):
            ShardManager().get("ghost")


class TestWorkerPool:
    def test_pool_fold_is_bit_identical_to_serial(self):
        """The tentpole invariant: any worker count, any dispatch mix
        (arrays, packed frames, histograms) folds to exactly the serial
        histogram."""
        all_batches = batches()
        expected = serial_fold(all_batches)
        histogram_extra = np.bincount(
            all_batches[0], minlength=NUM_OUTPUTS
        ).astype(float)
        expected = expected.merge(
            ShardAccumulator(NUM_OUTPUTS).add_histogram(histogram_extra)
        )

        async def run(num_workers):
            pool = WorkerPool(num_workers, flush_interval=0.02)
            await pool.start()
            try:
                await pool.open_campaign("demo", NUM_OUTPUTS)
                for index, batch in enumerate(all_batches):
                    if index % 3 == 2:
                        # Exercise the packed (binary-frame) path too.
                        payload = batch.astype("<u1").tobytes()
                        accepted = await pool.submit_reports_packed(
                            "demo", 1, payload
                        )
                    else:
                        accepted = await pool.submit_reports("demo", batch)
                    assert accepted == batch.shape[0]
                assert await pool.submit_histogram(
                    "demo", histogram_extra
                ) == int(histogram_extra.sum())
                await pool.drain()
                merged = await pool.snapshots()
                stats = await pool.stats()
                assert stats["workers_alive"] == num_workers
                assert stats["dispatched_reports"] == expected.num_reports
                return merged["demo"]
            finally:
                await pool.stop()

        for num_workers in (1, 3):
            merged = asyncio.run(run(num_workers))
            assert merged.num_reports == expected.num_reports
            assert np.array_equal(merged.histogram, expected.histogram)

    def test_worker_validation_errors_travel_back(self):
        async def run():
            pool = WorkerPool(2, flush_interval=0.02)
            await pool.start()
            try:
                await pool.open_campaign("demo", NUM_OUTPUTS)
                with pytest.raises(ServiceError, match="output range"):
                    await pool.submit_reports(
                        "demo", np.array([NUM_OUTPUTS + 3], dtype=np.int64)
                    )
                with pytest.raises(ServiceError, match="unknown campaign"):
                    await pool.submit_reports(
                        "ghost", np.array([0], dtype=np.int64)
                    )
                # The pool is still healthy after rejected batches.
                assert await pool.submit_reports(
                    "demo", np.array([0, 1], dtype=np.int64)
                ) == 2
            finally:
                await pool.stop()

        asyncio.run(run())

    def test_sigkilled_worker_degrades_the_pool_loudly(self):
        async def run():
            pool = WorkerPool(2, flush_interval=0.02)
            await pool.start()
            try:
                await pool.open_campaign("demo", NUM_OUTPUTS)
                await pool.submit_reports(
                    "demo", np.array([0, 1, 2], dtype=np.int64)
                )
                os.kill(pool.worker_pids()[0], signal.SIGKILL)
                deadline = time.time() + 10
                while pool.workers_alive > 1 and time.time() < deadline:
                    await asyncio.sleep(0.05)
                assert pool.workers_alive == 1
                with pytest.raises(ServiceError, match="restart the service"):
                    await pool.snapshots()
                with pytest.raises(ServiceError, match="restart the service"):
                    await pool.submit_reports(
                        "demo", np.array([0], dtype=np.int64)
                    )
                # Metrics stay readable while degraded.
                stats = await pool.stats()
                assert stats["workers_alive"] == 1
            finally:
                await pool.stop()

        asyncio.run(run())

    def test_rejects_bad_configuration(self):
        with pytest.raises(ServiceError, match=">= 1"):
            WorkerPool(0)

    def test_supervised_pool_refuses_unlogged_submit_apis(self):
        """The direct submit APIs carry no WAL sequence, so a supervised
        pool could not replay them after a worker respawn — they must
        refuse up front instead of silently under-counting later."""

        async def run():
            pool = WorkerPool(1, wal=object())  # never started: the
            # guard must fire before any dispatch machinery is touched
            with pytest.raises(ServiceError, match="write-ahead log"):
                await pool.submit_reports("demo", np.array([0], dtype=np.int64))
            with pytest.raises(ServiceError, match="write-ahead log"):
                await pool.submit_reports_packed("demo", 1, b"\x00")
            with pytest.raises(ServiceError, match="write-ahead log"):
                await pool.submit_histogram("demo", np.ones(NUM_OUTPUTS))

        asyncio.run(run())


@pytest.fixture
def cluster_service(tmp_path):
    """A running 2-worker cluster service with one campaign + client."""
    service = CollectionService(
        cluster_workers=2,
        flush_interval=0.02,
        checkpoint_dir=tmp_path / "ckpt",
        checkpoint_interval=3600.0,
    )
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    client.create_campaign(
        "demo",
        workload="Histogram",
        domain_size=NUM_OUTPUTS,
        epsilon=1.0,
        mechanism="Randomized Response",
    )
    try:
        yield service, thread, client, tmp_path / "ckpt"
    finally:
        client.close()
        try:
            thread.stop(final_checkpoint=False)
        except Exception:
            pass


class TestClusterService:
    def test_cluster_answers_match_single_process_bit_for_bit(
        self, cluster_service, tmp_path
    ):
        service, _, client, _ = cluster_service
        all_batches = batches(seed=3)
        binary = ServiceClient(client.host, client.port, transport="binary")
        for index, batch in enumerate(all_batches):
            sender = binary if index % 2 else client
            assert sender.send_reports("demo", batch)["accepted"] == len(batch)
        answer = client.query("demo", sync=True)
        binary.close()

        # The same reports through a single-process service.
        single = CollectionService(flush_interval=0.02)
        with ServiceThread(single) as (host, port):
            reference_client = ServiceClient(host, port)
            reference_client.create_campaign(
                "demo",
                workload="Histogram",
                domain_size=NUM_OUTPUTS,
                epsilon=1.0,
                mechanism="Randomized Response",
            )
            for batch in all_batches:
                reference_client.send_reports("demo", batch)
            reference = reference_client.query("demo", sync=True)
            reference_client.close()

        assert answer["num_reports"] == reference["num_reports"]
        assert answer["estimates"] == reference["estimates"]
        assert answer["standard_errors"] == reference["standard_errors"]

        health = client.healthz()
        assert health["cluster_workers"] == 2
        assert health["workers_alive"] == 2
        metrics = client.metrics()
        assert metrics["total_reports"] == answer["num_reports"]
        assert metrics["cluster"]["workers_alive"] == 2
        assert metrics["ingest"]["ingested"] == answer["num_reports"]
        # describe() must show live counts even though the reports live
        # on worker shards, not the coordinator's base accumulator.
        assert client.campaign("demo")["num_reports"] == answer["num_reports"]

    def test_graceful_stop_checkpoints_every_worker_shard(
        self, cluster_service
    ):
        service, thread, client, checkpoint_dir = cluster_service
        for batch in batches(seed=5, count=6):
            client.send_reports("demo", batch)
        expected = client.query("demo", sync=True)
        client.close()
        thread.stop()  # drain + coordinated final checkpoint

        recovered = CollectionService(
            checkpoint_dir=checkpoint_dir, flush_interval=0.02
        )
        assert recovered.recovered
        with ServiceThread(recovered) as (host, port):
            after = ServiceClient(host, port)
            answer = after.query("demo", sync=True)
            assert answer["num_reports"] == expected["num_reports"]
            assert answer["estimates"] == expected["estimates"]
            after.close()

    def test_worker_sigkill_mid_stream_recovers_from_checkpoint(
        self, cluster_service
    ):
        """SIGKILL a worker between checkpoints: the service refuses to
        answer over the gap, and a restart recovers the coordinated
        checkpoint bit-identically (cluster mode again)."""
        service, thread, client, checkpoint_dir = cluster_service
        for batch in batches(seed=7, count=6):
            client.send_reports("demo", batch)
        client.checkpoint()
        at_checkpoint = client.query("demo", sync=True)

        # More reports after the checkpoint, then a worker dies.
        for batch in batches(seed=8, count=4):
            client.send_reports("demo", batch)
        os.kill(service.pool.worker_pids()[0], signal.SIGKILL)
        deadline = time.time() + 10
        while service.pool.workers_alive > 1 and time.time() < deadline:
            time.sleep(0.05)
        # A dead worker is a server-side failure: 503, not a client 400.
        with pytest.raises(ServiceError, match="503.*restart the service"):
            client.query("demo", sync=True)
        # Liveness probes see the degradation too (503 healthz), so a
        # load balancer drains the instance instead of routing to it.
        with pytest.raises(ServiceError, match="degraded"):
            client.healthz()
        client.close()
        thread.stop(final_checkpoint=False)  # the crash path

        recovered = CollectionService(
            checkpoint_dir=checkpoint_dir,
            cluster_workers=2,
            flush_interval=0.02,
        )
        assert recovered.recovered
        with ServiceThread(recovered) as (host, port):
            after = ServiceClient(host, port)
            answer = after.query("demo", sync=True)
            assert answer["num_reports"] == at_checkpoint["num_reports"]
            assert answer["estimates"] == at_checkpoint["estimates"]
            # The recovered cluster still ingests, on either transport.
            after.send_reports("demo", [0, 1, 2])
            binary = ServiceClient(host, port, transport="binary")
            binary._request(
                "POST", "/v1/reports", raw=encode_reports("demo", [3])
            )
            final = after.query("demo", sync=True)
            assert final["num_reports"] == at_checkpoint["num_reports"] + 4
            binary.close()
            after.close()
