"""End-to-end tests of the HTTP service + client SDK.

Each test runs a real :class:`CollectionService` on a background
event-loop thread bound to an ephemeral port and talks to it over actual
sockets through the blocking SDK — the same path production traffic takes.
"""

import urllib.request

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service import (
    CollectionService,
    ServiceClient,
    ServiceThread,
    CheckpointStore,
)


@pytest.fixture
def live():
    """A running service + connected client (fast flush for tests)."""
    service = CollectionService(flush_interval=0.02, flush_reports=512)
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    try:
        yield service, client
    finally:
        client.close()
        thread.stop()


def make_campaign(client, name="demo", domain_size=8, epsilon=1.0):
    return client.create_campaign(
        name,
        workload="Histogram",
        domain_size=domain_size,
        epsilon=epsilon,
        mechanism="Randomized Response",
    )


class TestEndpoints:
    def test_healthz_and_metrics(self, live):
        _, client = live
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["recovered"] is False
        from repro._version import __version__

        assert health["version"] == __version__
        metrics = client.metrics()
        assert metrics["total_reports"] == 0
        assert metrics["checkpoints_written"] == 0

    def test_campaign_lifecycle(self, live):
        _, client = live
        created = make_campaign(client)
        assert created["name"] == "demo"
        assert created["num_outputs"] == 8
        assert [c["name"] for c in client.campaigns()] == ["demo"]
        assert client.campaign("demo")["workload"] == "Histogram"
        with pytest.raises(ServiceError, match="already exists"):
            make_campaign(client)
        with pytest.raises(ServiceError, match="unknown campaign"):
            client.campaign("ghost")

    def test_strategy_is_served_and_revalidated(self, live):
        _, client = live
        make_campaign(client)
        strategy = client.strategy("demo")
        assert strategy.shape == (8, 8)
        assert strategy.epsilon == 1.0
        # exact float round trip through JSON
        from repro.mechanisms import randomized_response

        assert np.array_equal(
            strategy.probabilities, randomized_response(8, 1.0).probabilities
        )

    def test_single_report_endpoint(self, live):
        _, client = live
        make_campaign(client)
        response = client._request(
            "POST", "/v1/report", {"campaign": "demo", "report": 3}
        )
        assert response["accepted"] == 1
        assert client.query("demo", sync=True)["num_reports"] == 1

    def test_bad_requests_get_json_errors(self, live):
        _, client = live
        make_campaign(client)
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/v1/nope")
        with pytest.raises(ServiceError, match="campaign"):
            client._request("POST", "/v1/reports", {"reports": [1]})
        with pytest.raises(ServiceError, match="exactly one"):
            client._request(
                "POST",
                "/v1/reports",
                {"campaign": "demo", "reports": [1], "histogram": [1.0] * 8},
            )
        with pytest.raises(ServiceError, match="output range"):
            client.send_reports("demo", [99])
        with pytest.raises(ServiceError, match="400"):
            client._request("POST", "/v1/campaigns", {"name": "incomplete"})

    def test_malformed_http_gets_an_error_response(self, live):
        service, client = live
        import http.client

        connection = http.client.HTTPConnection(client.host, client.port)
        connection.request("BREW", "/v1/espresso")
        response = connection.getresponse()
        assert response.status == 404
        connection.close()

    def test_bad_content_length_gets_400_not_dropped(self, live):
        _, client = live
        import socket

        for header in (b"Content-Length: abc", b"Content-Length: -5"):
            with socket.create_connection(
                (client.host, client.port), timeout=5
            ) as raw:
                raw.sendall(
                    b"POST /v1/reports HTTP/1.1\r\n" + header + b"\r\n\r\n"
                )
                response = raw.recv(4096)
            assert response.startswith(b"HTTP/1.1 400"), response[:40]

    def test_string_reports_get_400_not_500(self, live):
        _, client = live
        make_campaign(client)
        for payload in (["abc"], [None], [0, "x"]):
            with pytest.raises(ServiceError, match="400"):
                client._request(
                    "POST",
                    "/v1/reports",
                    {"campaign": "demo", "reports": payload},
                )
        assert client.query("demo", sync=True)["num_reports"] == 0

    def test_raw_urllib_query(self, live):
        """The API is plain HTTP — no SDK required."""
        _, client = live
        make_campaign(client)
        client.send_reports("demo", [0, 1, 2])
        with urllib.request.urlopen(
            f"http://{client.host}:{client.port}/v1/query?campaign=demo&sync=1"
        ) as response:
            import json

            payload = json.loads(response.read())
        assert payload["num_reports"] == 3

    def test_checkpoint_endpoint_requires_directory(self, live):
        _, client = live
        with pytest.raises(ServiceError, match="checkpoint"):
            client.checkpoint()


class TestBinaryTransport:
    def test_binary_and_json_reports_fold_identically(self, live):
        _, client = live
        make_campaign(client)
        binary = ServiceClient(client.host, client.port, transport="binary")
        reports = list(np.random.default_rng(0).integers(0, 8, size=400))
        response = binary.send_reports("demo", reports)
        assert response["accepted"] == 400
        assert response["campaign"] == "demo"
        client.send_reports("demo", reports)
        answer = client.query("demo", sync=True)
        assert answer["num_reports"] == 800
        expected = np.bincount(np.asarray(reports), minlength=8) * 2.0
        histogram = binary.send_histogram("demo", expected)
        assert histogram["accepted"] == 800
        binary.close()

    def test_multi_frame_body_accepted_per_campaign(self, live):
        _, client = live
        from repro.service import encode_histogram, encode_reports

        make_campaign(client)
        make_campaign(client, name="other")
        body = (
            encode_reports("demo", [0, 1])
            + encode_reports("other", [2])
            + encode_histogram("demo", [3.0] + [0.0] * 7)
        )
        response = client._request("POST", "/v1/reports", raw=body)
        assert response["accepted"] == 6
        assert response["campaigns"] == {"demo": 5, "other": 1}
        assert "campaign" not in response
        assert client.query("demo", sync=True)["num_reports"] == 5
        assert client.query("other", sync=True)["num_reports"] == 1

    def test_binary_validation_errors_are_400s(self, live):
        _, client = live
        from repro.service import encode_reports

        make_campaign(client)
        with pytest.raises(ServiceError, match="unknown campaign"):
            client._request(
                "POST", "/v1/reports", raw=encode_reports("ghost", [1])
            )
        with pytest.raises(ServiceError, match="output range"):
            client._request(
                "POST", "/v1/reports", raw=encode_reports("demo", [99])
            )
        with pytest.raises(ServiceError, match="magic"):
            client._request("POST", "/v1/reports", raw=b"not a frame at all")
        with pytest.raises(ServiceError, match="/v1/reports"):
            client._request(
                "POST", "/v1/report", raw=encode_reports("demo", [1])
            )
        assert client.query("demo", sync=True)["num_reports"] == 0

    def test_client_rejects_unknown_transport(self, live):
        _, client = live
        with pytest.raises(ServiceError, match="transport"):
            ServiceClient(client.host, client.port, transport="carrier-pigeon")


class TestTransportPolicy:
    @pytest.fixture
    def restricted(self, request):
        service = CollectionService(
            flush_interval=0.02, transport=request.param
        )
        thread = ServiceThread(service)
        host, port = thread.start()
        client = ServiceClient(host, port)
        make_campaign(client)
        try:
            yield client
        finally:
            client.close()
            thread.stop()

    @pytest.mark.parametrize("restricted", ["json"], indirect=True)
    def test_json_only_service_rejects_frames(self, restricted):
        from repro.service import encode_reports

        with pytest.raises(ServiceError, match="only json"):
            restricted._request(
                "POST", "/v1/reports", raw=encode_reports("demo", [1])
            )
        assert restricted.send_reports("demo", [1])["accepted"] == 1

    @pytest.mark.parametrize("restricted", ["binary"], indirect=True)
    def test_binary_only_service_rejects_json_ingest(self, restricted):
        from repro.service import encode_reports

        with pytest.raises(ServiceError, match="only binary"):
            restricted.send_reports("demo", [1])
        # Control plane (campaigns, queries) stays JSON even then.
        assert restricted.campaign("demo")["name"] == "demo"
        restricted._request(
            "POST", "/v1/reports", raw=encode_reports("demo", [1, 2])
        )
        assert restricted.query("demo", sync=True)["num_reports"] == 2

    def test_unknown_server_transport_rejected(self):
        with pytest.raises(ServiceError, match="transport"):
            CollectionService(transport="smoke-signals")


class TestReporter:
    def test_client_side_randomization_only_ships_output_ids(self, live):
        _, client = live
        make_campaign(client)
        reporter = client.reporter(
            "demo", batch_size=100, rng=np.random.default_rng(0)
        )
        values = np.random.default_rng(1).integers(0, 8, size=950)
        reporter.report_many(values)
        assert reporter.pending == 50  # 9 full batches shipped
        assert reporter.reports_sent == 900
        reporter.flush_all()
        assert reporter.pending == 0
        answer = client.query("demo", sync=True)
        assert answer["num_reports"] == 950

    def test_reporter_context_manager_flushes(self, live):
        _, client = live
        make_campaign(client)
        with client.reporter("demo", rng=np.random.default_rng(0)) as reporter:
            for value in [1, 2, 3]:
                reporter.report(value)
        assert client.query("demo", sync=True)["num_reports"] == 3

    def test_reporter_rejects_out_of_domain_values(self, live):
        _, client = live
        make_campaign(client)
        reporter = client.reporter("demo")
        with pytest.raises(ServiceError, match="domain"):
            reporter.report(8)


class TestAcceptance:
    """The ISSUE's end-to-end criterion, in-process."""

    def test_live_estimates_match_batch_and_survive_crash(self, tmp_path):
        num_reports = 10_000
        service = CollectionService(
            checkpoint_dir=tmp_path,
            checkpoint_interval=600.0,  # only explicit checkpoints
            flush_interval=0.02,
        )
        thread = ServiceThread(service)
        host, port = thread.start()
        client = ServiceClient(host, port)
        client.create_campaign(
            "accept",
            workload="Prefix",
            domain_size=16,
            epsilon=1.0,
            mechanism="Hadamard",
        )

        # 1. ingest >= 10k client-randomized reports through the async path
        reporter = client.reporter(
            "accept", batch_size=1000, rng=np.random.default_rng(0)
        )
        values = np.random.default_rng(1).integers(0, 16, size=num_reports)
        for start in range(0, num_reports, 2500):
            reporter.report_many(values[start : start + 2500])
        reporter.flush_all()

        # 2. live query == ProtocolSession.finalize on the equivalent batch
        answer = client.query("accept", sync=True)
        assert answer["num_reports"] == num_reports
        campaign = service.manager.get("accept")
        batch = campaign.session.finalize(campaign.accumulator)
        assert np.allclose(
            np.asarray(answer["estimates"]), batch.workload_estimates,
            rtol=0, atol=1e-9,
        )

        # 3. checkpoint, kill without a final checkpoint, restart, compare
        client.checkpoint()
        pre_kill = client.query("accept", sync=True)
        client.close()
        thread.stop(final_checkpoint=False)  # simulated crash

        recovered_service = CollectionService(checkpoint_dir=tmp_path)
        assert recovered_service.recovered
        thread2 = ServiceThread(recovered_service)
        host2, port2 = thread2.start()
        client2 = ServiceClient(host2, port2)
        try:
            post_restart = client2.query("accept", sync=True)
            assert post_restart["num_reports"] == pre_kill["num_reports"]
            # bit-identical, not merely close
            assert post_restart["estimates"] == pre_kill["estimates"]
            assert post_restart["lower"] == pre_kill["lower"]
            assert post_restart["upper"] == pre_kill["upper"]
            # and the recovered service keeps ingesting
            client2.send_reports("accept", [0, 1, 2])
            assert (
                client2.query("accept", sync=True)["num_reports"]
                == num_reports + 3
            )
        finally:
            client2.close()
            thread2.stop()

    def test_live_query_sees_unflushed_reports(self, live):
        service, client = live
        make_campaign(client)
        # flush thresholds far away: reports sit in worker partials
        service.pipeline.flush_reports = 1_000_000
        service.pipeline.flush_interval = 60.0
        client.send_reports("demo", [0, 1, 2, 3])
        # async ingestion: poll briefly until the workers have folded
        import time

        deadline = time.time() + 2.0
        while time.time() < deadline:
            if client.query("demo")["num_reports"] == 4:
                break
            time.sleep(0.01)
        assert client.query("demo")["num_reports"] == 4

    def test_multi_campaign_isolation(self, live):
        _, client = live
        make_campaign(client, "first", domain_size=8)
        make_campaign(client, "second", domain_size=8)
        client.send_reports("first", [0, 0, 0])
        client.send_reports("second", [7])
        assert client.query("first", sync=True)["num_reports"] == 3
        assert client.query("second", sync=True)["num_reports"] == 1
        metrics = client.metrics()
        assert metrics["total_reports"] == 4
        assert metrics["campaigns"]["first"]["num_reports"] == 3


class TestServiceConfig:
    def test_rejects_bad_checkpoint_interval(self):
        with pytest.raises(ServiceError):
            CollectionService(checkpoint_interval=0.0)

    def test_periodic_checkpoints_fire(self, tmp_path):
        service = CollectionService(
            checkpoint_dir=tmp_path, checkpoint_interval=0.05
        )
        thread = ServiceThread(service)
        host, port = thread.start()
        client = ServiceClient(host, port)
        try:
            make_campaign(client)
            import time

            deadline = time.time() + 5.0
            while time.time() < deadline:
                if client.metrics()["checkpoints_written"] >= 2:
                    break
                time.sleep(0.02)
            assert client.metrics()["checkpoints_written"] >= 2
            assert CheckpointStore(tmp_path).exists()
        finally:
            client.close()
            thread.stop()
