"""Tests for the async micro-batching ingest pipeline."""

import asyncio

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service import CampaignManager, IngestPipeline


def make_manager(domain_size: int = 8) -> CampaignManager:
    manager = CampaignManager()
    manager.create(
        "demo",
        workload="Histogram",
        domain_size=domain_size,
        epsilon=1.0,
        mechanism="Randomized Response",
    )
    return manager


def run(coroutine):
    return asyncio.run(coroutine)


class TestValidation:
    def test_rejects_before_start(self):
        pipeline = IngestPipeline(make_manager())

        async def submit():
            await pipeline.submit_reports("demo", [0])

        with pytest.raises(ServiceError, match="not running"):
            run(submit())

    @pytest.mark.parametrize(
        "reports",
        [[], [[0, 1]], [0, 8], [-1], [0.5], ["a"], [None], [0, "x"],
         [[0], [1, 2]], "abc"],
    )
    def test_rejects_bad_reports_with_service_error(self, reports):
        # Every malformed payload — including strings, nulls, and ragged
        # nesting — must surface as ServiceError (HTTP 400), never as a
        # raw ValueError/TypeError (HTTP 500).
        manager = make_manager()
        pipeline = IngestPipeline(manager)

        async def submit():
            await pipeline.start()
            try:
                with pytest.raises(ServiceError):
                    await pipeline.submit_reports("demo", reports)
            finally:
                await pipeline.stop()

        run(submit())
        assert manager.get("demo").num_reports == 0

    @pytest.mark.parametrize(
        "histogram",
        [["a"] * 8, [float("nan")] + [0.0] * 7, [float("inf")] + [0.0] * 7],
    )
    def test_rejects_non_finite_or_non_numeric_histogram(self, histogram):
        pipeline = IngestPipeline(make_manager())

        async def submit():
            await pipeline.start()
            try:
                with pytest.raises(ServiceError):
                    await pipeline.submit_histogram("demo", histogram)
            finally:
                await pipeline.stop()

        run(submit())

    def test_rejected_batch_is_all_or_nothing(self):
        manager = make_manager()
        pipeline = IngestPipeline(manager)

        async def submit():
            await pipeline.start()
            with pytest.raises(ServiceError):
                await pipeline.submit_reports("demo", [0, 1, 2, 99])
            await pipeline.stop()

        run(submit())
        assert manager.get("demo").num_reports == 0
        assert pipeline.stats.rejected_batches == 1

    def test_float_integer_reports_accepted(self):
        # JSON has no int/float distinction; 3.0 must count as 3.
        manager = make_manager()
        pipeline = IngestPipeline(manager)

        async def submit():
            await pipeline.start()
            await pipeline.submit_reports("demo", [0.0, 3.0, 3.0])
            await pipeline.stop()

        run(submit())
        accumulator = manager.get("demo").accumulator
        assert accumulator.num_reports == 3
        assert accumulator.histogram[3] == 2

    def test_histogram_shape_checked(self):
        pipeline = IngestPipeline(make_manager())

        async def submit():
            await pipeline.start()
            try:
                with pytest.raises(ServiceError, match="shape"):
                    await pipeline.submit_histogram("demo", [1.0, 2.0])
            finally:
                await pipeline.stop()

        run(submit())

    def test_unknown_campaign(self):
        pipeline = IngestPipeline(make_manager())

        async def submit():
            await pipeline.start()
            try:
                with pytest.raises(ServiceError, match="unknown campaign"):
                    await pipeline.submit_reports("ghost", [0])
            finally:
                await pipeline.stop()

        run(submit())


class TestFolding:
    def test_reports_and_histograms_fold_together(self):
        manager = make_manager()
        pipeline = IngestPipeline(manager)

        async def feed():
            await pipeline.start()
            await pipeline.submit_reports("demo", [0, 1, 1])
            await pipeline.submit_histogram(
                "demo", [0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0]
            )
            await pipeline.drain()
            await pipeline.stop()

        run(feed())
        accumulator = manager.get("demo").accumulator
        assert accumulator.num_reports == 8
        assert np.array_equal(
            accumulator.histogram, [1, 2, 5, 0, 0, 0, 0, 0]
        )

    def test_concurrent_ingest_matches_serial_fold(self):
        """Satellite: any interleaving across workers == a serial fold."""
        rng = np.random.default_rng(7)
        batches = [rng.integers(0, 8, size=size) for size in rng.integers(1, 200, 64)]
        manager = make_manager()
        pipeline = IngestPipeline(
            manager, num_workers=4, flush_reports=97, flush_interval=0.01
        )

        async def feed():
            await pipeline.start()
            await asyncio.gather(
                *(pipeline.submit_reports("demo", batch) for batch in batches)
            )
            await pipeline.drain()
            await pipeline.stop()

        run(feed())
        serial = manager.get("demo").session.new_accumulator()
        for batch in batches:
            serial.add_reports(batch)
        live = manager.get("demo").accumulator
        assert live == serial  # bit-identical histogram + count
        assert pipeline.stats.ingested == sum(len(b) for b in batches)

    def test_threshold_flush_and_timer_flush(self):
        manager = make_manager()
        pipeline = IngestPipeline(
            manager, num_workers=1, flush_reports=10, flush_interval=0.02
        )

        async def feed():
            await pipeline.start()
            # Over the threshold: flushes without waiting for the timer.
            await pipeline.submit_reports("demo", list(np.zeros(25, dtype=int)))
            await pipeline._queue.join()
            threshold_flushed = manager.get("demo").num_reports
            # Under the threshold: becomes visible via the timer flush.
            await pipeline.submit_reports("demo", [1, 1])
            await pipeline._queue.join()
            deadline = asyncio.get_event_loop().time() + 2.0
            while manager.get("demo").num_reports < 27:
                if asyncio.get_event_loop().time() > deadline:
                    break
                await asyncio.sleep(0.01)
            await pipeline.stop()
            return threshold_flushed

        threshold_flushed = run(feed())
        assert threshold_flushed == 25
        assert manager.get("demo").num_reports == 27
        assert manager.get("demo").flushes >= 2

    def test_pending_accumulators_cover_unflushed_reports(self):
        manager = make_manager()
        pipeline = IngestPipeline(
            manager, num_workers=1, flush_reports=1_000_000, flush_interval=60.0
        )

        async def feed():
            await pipeline.start()
            await pipeline.submit_reports("demo", [0, 1, 2])
            await pipeline._queue.join()
            # nothing flushed yet — the live accumulator is empty...
            assert manager.get("demo").num_reports == 0
            # ...but a live query folds the pending partials in.
            answer = manager.query(
                "demo", pending=pipeline.pending_accumulators("demo")
            )
            assert answer.num_reports == 3
            await pipeline.stop()

        run(feed())
        assert manager.get("demo").num_reports == 3  # stop() flushes

    def test_drain_is_bounded_under_sustained_ingest(self):
        """drain() waits only for batches submitted before the call — a
        steady stream on one campaign must not starve it forever."""
        manager = make_manager()
        pipeline = IngestPipeline(manager, num_workers=1, flush_interval=10.0)

        async def feed():
            await pipeline.start()
            stop_feeding = False

            async def firehose():
                while not stop_feeding:
                    await pipeline.submit_reports("demo", [0, 1])
                    await asyncio.sleep(0)

            feeder = asyncio.create_task(firehose())
            await asyncio.sleep(0.02)  # let the stream establish itself
            await asyncio.wait_for(pipeline.drain(), timeout=5.0)
            stop_feeding = True
            await feeder
            await pipeline.stop()

        run(feed())

    def test_backpressure_bounded_queue(self):
        manager = make_manager()
        pipeline = IngestPipeline(manager, num_workers=1, max_pending=2)

        async def feed():
            # Workers not started: the queue must fill and block at its bound.
            pipeline._running = True
            await pipeline.submit_reports("demo", [0])
            await pipeline.submit_reports("demo", [1])
            assert pipeline.queue_depth == 2
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    pipeline.submit_reports("demo", [2]), timeout=0.05
                )

        run(feed())

    def test_stats_json_round_trip(self):
        import json

        pipeline = IngestPipeline(make_manager())
        payload = pipeline.stats.to_json()
        assert json.loads(json.dumps(payload)) == payload


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"max_pending": 0},
            {"flush_reports": 0},
            {"flush_interval": 0.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ServiceError):
            IngestPipeline(make_manager(), **kwargs)
