"""Deterministic fault plans: parsing, counting, matching, pickling.

The chaos drill's bit-identical assertions rest on these semantics: a
fault fires on exactly its Nth occurrence, exactly once, with the same
answer in every process that counts the same dispatch pattern.
"""

import json
import pickle

import pytest

from repro.exceptions import ServiceError
from repro.service import FAULT_ACTIONS, Fault, FaultPlan


class TestParsing:
    def test_load_inline_json_and_roundtrip(self):
        document = {
            "seed": 7,
            "faults": [
                {"action": "kill_worker", "at": 3, "worker": 1},
                {"action": "delay_ack", "at": 2, "seconds": 0.25},
            ],
        }
        plan = FaultPlan.load(json.dumps(document))
        assert plan.seed == 7
        assert plan.to_json() == document

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"faults": [{"action": "torn_wal", "at": 9}]}')
        plan = FaultPlan.load(str(path))
        assert plan.faults[0].action == "torn_wal"
        assert plan.faults[0].at == 9

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="not found"):
            FaultPlan.load(str(tmp_path / "absent.json"))

    def test_invalid_json_rejected(self):
        with pytest.raises(ServiceError, match="not valid JSON"):
            FaultPlan.load("{broken")

    def test_unknown_action_rejected(self):
        with pytest.raises(ServiceError, match="unknown fault action"):
            FaultPlan.from_json({"faults": [{"action": "set_fire", "at": 1}]})

    def test_bad_occurrence_rejected(self):
        for at in (0, -1, "3", True, None):
            with pytest.raises(ServiceError, match="'at'"):
                Fault("delay_ack", at, {})

    def test_every_documented_action_parses(self):
        plan = FaultPlan.from_json(
            {"faults": [{"action": a, "at": 1} for a in FAULT_ACTIONS]}
        )
        assert len(plan.faults) == len(FAULT_ACTIONS)


class TestFiring:
    def test_fires_on_nth_occurrence_exactly_once(self):
        plan = FaultPlan.from_json(
            {"faults": [{"action": "delay_ack", "at": 3, "seconds": 0.5}]}
        )
        assert plan.check("delay_ack") is None
        assert plan.check("delay_ack") is None
        fired = plan.check("delay_ack")
        assert fired["seconds"] == 0.5
        assert fired["at"] == 3
        assert plan.check("delay_ack") is None  # armed once, never again

    def test_sites_count_independently(self):
        plan = FaultPlan.from_json(
            {
                "faults": [
                    {"action": "kill_worker", "at": 1},
                    {"action": "drop_reply", "at": 2},
                ]
            }
        )
        assert plan.check("drop_reply") is None  # count 1: not yet
        assert plan.check("kill_worker") is not None  # its own counter
        assert plan.check("drop_reply") is not None

    def test_match_keys_scope_the_count(self):
        plan = FaultPlan.from_json(
            {"faults": [{"action": "drop_reply", "at": 2, "op": "cut"}]}
        )
        # non-matching ops do not advance the entry's counter: "at 2"
        # means the second *cut* op, however many other ops pass the site
        assert plan.check("drop_reply", op="json") is None
        assert plan.check("drop_reply", op="json") is None
        assert plan.check("drop_reply", op="cut") is None  # first cut
        assert plan.check("drop_reply", op="json") is None
        assert plan.check("drop_reply", op="cut") is not None  # second cut
        # keys absent from the context match anything
        relaxed = FaultPlan.from_json(
            {"faults": [{"action": "drop_reply", "at": 1, "op": "cut"}]}
        )
        assert relaxed.check("drop_reply") is not None

    def test_count_override_targets_a_sequence(self):
        plan = FaultPlan.from_json(
            {"faults": [{"action": "torn_wal", "at": 120}]}
        )
        assert plan.check("torn_wal", count=119) is None
        assert plan.check("torn_wal", count=120) is not None
        assert plan.check("torn_wal", count=120) is None

    def test_two_faults_same_action_different_occurrences(self):
        plan = FaultPlan.from_json(
            {
                "faults": [
                    {"action": "kill_worker", "at": 2, "worker": 0},
                    {"action": "kill_worker", "at": 4, "worker": 1},
                ]
            }
        )
        hits = [plan.check("kill_worker") for _ in range(5)]
        assert [h["worker"] for h in hits if h] == [0, 1]


class TestPickling:
    def test_unpickled_copy_counts_from_zero(self):
        plan = FaultPlan.from_json(
            {"seed": 3, "faults": [{"action": "drop_reply", "at": 2}]}
        )
        assert plan.check("drop_reply") is None  # parent consumed count 1
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 3
        assert clone.check("drop_reply") is None  # fresh counter: count 1
        assert clone.check("drop_reply") is not None
        # the parent's own counter kept going independently
        assert plan.check("drop_reply") is not None

    def test_fired_state_resets_across_pickle(self):
        plan = FaultPlan.from_json(
            {"faults": [{"action": "kill_worker", "at": 1}]}
        )
        assert plan.check("kill_worker") is not None
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.check("kill_worker") is not None
