"""Checkpoint write/recover tests, including the crash round-trip."""

import json

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service import CampaignManager, CheckpointStore


def make_manager() -> CampaignManager:
    manager = CampaignManager()
    manager.create(
        "alpha",
        workload="Histogram",
        domain_size=8,
        epsilon=1.0,
        mechanism="Randomized Response",
    )
    manager.create(
        "beta",
        workload="Prefix",
        domain_size=16,
        epsilon=0.5,
        mechanism="Hadamard",
    )
    return manager


class TestSaveLoad:
    def test_round_trip_is_bit_identical(self, tmp_path):
        manager = make_manager()
        rng = np.random.default_rng(0)
        manager.get("alpha").accumulator.add_reports(
            rng.integers(0, 8, size=500)
        )
        manager.get("beta").accumulator.add_reports(
            rng.integers(0, manager.get("beta").session.num_outputs, size=700)
        )
        store = CheckpointStore(tmp_path)
        assert not store.exists()
        store.save(manager)
        assert store.exists()

        recovered = CheckpointStore(tmp_path).load()
        assert sorted(c.name for c in recovered.campaigns()) == ["alpha", "beta"]
        for name in ("alpha", "beta"):
            original, restored = manager.get(name), recovered.get(name)
            assert restored.accumulator == original.accumulator
            assert np.array_equal(
                restored.session.strategy.probabilities,
                original.session.strategy.probabilities,
            )
            assert restored.epsilon == original.epsilon
            assert restored.workload_name == original.workload_name
            # recovered estimates are bit-identical, not merely close
            assert np.array_equal(
                recovered.query(name).intervals.estimates,
                manager.query(name).intervals.estimates,
            )

    def test_kill_and_restart_restores_accumulator_bits(self, tmp_path):
        """Satellite: checkpoint → lose the process → restart → identical."""
        store = CheckpointStore(tmp_path)
        manager = make_manager()
        rng = np.random.default_rng(1)
        # several checkpoint cycles with growth in between, like a live
        # service; only the last checkpoint counts.
        for _ in range(3):
            manager.get("alpha").accumulator.add_reports(
                rng.integers(0, 8, size=200)
            )
            store.save(manager)
        pre_kill = manager.get("alpha").accumulator.snapshot()
        # un-checkpointed growth after the last save is lost by a crash
        manager.get("alpha").accumulator.add_reports([0, 0, 0])
        del manager

        recovered = CheckpointStore(tmp_path).load()
        assert recovered.get("alpha").accumulator == pre_kill
        assert recovered.get("alpha").num_reports == 600

    def test_save_with_pretaken_snapshots_ignores_later_growth(self, tmp_path):
        """The service snapshots on the event loop before the threaded file
        write; reports folded after the snapshot must not leak into the
        manifest (a count/payload mismatch would poison recovery)."""
        store = CheckpointStore(tmp_path)
        manager = make_manager()
        manager.get("alpha").accumulator.add_reports([0, 1])
        snapshots = {
            campaign.name: campaign.accumulator.snapshot()
            for campaign in manager.campaigns()
        }
        # a flush lands "mid-save"
        manager.get("alpha").accumulator.add_reports([2, 2, 2])
        manifest = store.save(manager, snapshots)
        assert manifest["campaigns"]["alpha"]["num_reports"] == 2
        recovered = store.load()
        assert recovered.get("alpha").num_reports == 2

    def test_stale_strategy_file_from_prior_deployment_is_rewritten(
        self, tmp_path
    ):
        """Crash window: strategies/<name>.npz exists from an older
        deployment but the manifest never recorded it.  A new campaign with
        the same name and a *different* strategy must not get the stale
        file checksummed into its manifest."""
        store = CheckpointStore(tmp_path)
        old = CampaignManager()
        old.create(
            "latency",
            workload="Histogram",
            domain_size=8,
            epsilon=1.0,
            mechanism="Randomized Response",
        )
        store.save(old)
        store.manifest_path.unlink()  # crash before the manifest landed

        new = CampaignManager()
        new.create(
            "latency",
            workload="Histogram",
            domain_size=8,
            epsilon=2.0,  # different budget => different strategy
            mechanism="Randomized Response",
        )
        store.save(new)
        recovered = store.load()
        assert recovered.get("latency").epsilon == 2.0
        assert np.array_equal(
            recovered.get("latency").session.strategy.probabilities,
            new.get("latency").session.strategy.probabilities,
        )

    def test_save_is_idempotent_and_overwrites(self, tmp_path):
        store = CheckpointStore(tmp_path)
        manager = make_manager()
        store.save(manager)
        manager.get("alpha").accumulator.add_reports([1, 2])
        manifest = store.save(manager)
        assert manifest["campaigns"]["alpha"]["num_reports"] == 2
        assert CheckpointStore(tmp_path).load().get("alpha").num_reports == 2


class TestDamage:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ServiceError, match="no checkpoint manifest"):
            CheckpointStore(tmp_path).load()

    def test_corrupt_manifest_json(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_manager())
        store.manifest_path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ServiceError, match="unreadable"):
            store.load()

    def test_wrong_manifest_version(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_manager())
        manifest = json.loads(store.manifest_path.read_text(encoding="utf-8"))
        manifest["manifest_version"] = 99
        store.manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ServiceError, match="version"):
            store.load()

    def test_tampered_accumulator_fails_checksum(self, tmp_path):
        store = CheckpointStore(tmp_path)
        manager = make_manager()
        manager.get("alpha").accumulator.add_reports([0, 1])
        store.save(manager)
        path = store.accumulator_path("alpha")
        path.write_bytes(path.read_bytes() + b"x")
        with pytest.raises(ServiceError, match="checksum"):
            store.load()

    def test_tampered_strategy_fails_checksum(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_manager())
        path = store.strategy_path("beta")
        payload = bytearray(path.read_bytes())
        payload[-1] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(ServiceError, match="checksum"):
            store.load()

    def test_missing_payload_file(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_manager())
        store.accumulator_path("alpha").unlink()
        with pytest.raises(ServiceError, match="missing"):
            store.load()

    def test_manifest_report_count_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path)
        manager = make_manager()
        manager.get("alpha").accumulator.add_reports([0])
        store.save(manager)
        manifest = json.loads(store.manifest_path.read_text(encoding="utf-8"))
        manifest["campaigns"]["alpha"]["num_reports"] = 12345
        # keep checksums valid; only the count lies
        store.manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ServiceError, match="disagrees"):
            store.load()
