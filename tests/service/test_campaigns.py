"""Tests for the campaign registry."""

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.mechanisms import randomized_response
from repro.protocol import ProtocolSession
from repro.service import Campaign, CampaignManager, validate_campaign_name
from repro.workloads import histogram


@pytest.fixture
def manager() -> CampaignManager:
    manager = CampaignManager()
    manager.create(
        "demo",
        workload="Histogram",
        domain_size=8,
        epsilon=1.0,
        mechanism="Randomized Response",
    )
    return manager


class TestCampaignNames:
    @pytest.mark.parametrize("name", ["a", "latency-v2", "A.b_c-9", "x" * 64])
    def test_accepts_safe_names(self, name):
        assert validate_campaign_name(name) == name

    @pytest.mark.parametrize(
        "name",
        ["", "../etc", "a/b", "a b", ".hidden", "-lead", "x" * 65, 7, None,
         "prod\n", "a\nb"],
    )
    def test_rejects_unsafe_names(self, name):
        with pytest.raises(ServiceError):
            validate_campaign_name(name)


class TestCampaignManager:
    def test_create_and_lookup(self, manager):
        campaign = manager.get("demo")
        assert campaign.session.epsilon == 1.0
        assert campaign.num_reports == 0
        assert "demo" in manager and len(manager) == 1
        assert [c.name for c in manager.campaigns()] == ["demo"]

    def test_case_colliding_name_rejected(self, manager):
        # 'Demo' and 'demo' would share a checkpoint file stem on
        # case-insensitive filesystems.
        with pytest.raises(ServiceError, match="case-insensitive"):
            manager.create(
                "DEMO",
                workload="Histogram",
                domain_size=8,
                epsilon=1.0,
                mechanism="Randomized Response",
            )

    def test_duplicate_name_rejected(self, manager):
        with pytest.raises(ServiceError, match="already exists"):
            manager.create(
                "demo",
                workload="Histogram",
                domain_size=8,
                epsilon=1.0,
                mechanism="Randomized Response",
            )

    def test_unknown_campaign_lists_known(self, manager):
        with pytest.raises(ServiceError, match="demo"):
            manager.get("nope")

    def test_unknown_mechanism(self):
        with pytest.raises(ServiceError, match="unknown mechanism"):
            CampaignManager().create(
                "x",
                workload="Histogram",
                domain_size=4,
                epsilon=1.0,
                mechanism="Quantum",
            )

    def test_store_mechanism_requires_store(self):
        with pytest.raises(ServiceError, match="store"):
            CampaignManager().create(
                "x",
                workload="Histogram",
                domain_size=4,
                epsilon=1.0,
                mechanism="store",
            )

    def test_create_from_store(self, tmp_path):
        from repro.optimization import OptimizerConfig, multi_restart_optimize
        from repro.store import StrategyStore
        from repro.workloads import histogram as histogram_workload

        store = StrategyStore(tmp_path)
        multi_restart_optimize(
            histogram_workload(4),
            1.0,
            OptimizerConfig(num_iterations=30, seed=0),
            restarts=1,
            store=store,
        )
        campaign = CampaignManager().create(
            "stored",
            workload="Histogram",
            domain_size=4,
            epsilon=1.0,
            mechanism="store",
            store=store,
        )
        assert campaign.source == "store"
        assert campaign.session.epsilon == 1.0

    def test_adopt_rejects_mismatched_accumulator(self):
        from repro.protocol import ShardAccumulator

        session = ProtocolSession(randomized_response(4, 1.0), histogram(4))
        with pytest.raises(ServiceError, match="does not match"):
            Campaign(
                name="bad",
                session=session,
                workload_name="Histogram",
                epsilon=1.0,
                source="test",
                accumulator=ShardAccumulator(7),
            )

    def test_describe_is_json_ready(self, manager):
        import json

        description = manager.get("demo").describe()
        assert json.loads(json.dumps(description)) == description
        assert description["workload"] == "Histogram"
        assert description["source"] == "Randomized Response"


class TestQuery:
    def test_live_query_matches_batch_finalize(self, manager):
        campaign = manager.get("demo")
        rng = np.random.default_rng(0)
        reports = rng.integers(0, campaign.session.num_outputs, size=2000)
        campaign.accumulator.add_reports(reports)
        answer = manager.query("demo", confidence=0.9)
        batch = campaign.session.finalize(campaign.accumulator)
        assert answer.num_reports == 2000
        assert np.array_equal(
            answer.intervals.estimates, batch.workload_estimates
        )
        assert answer.intervals.confidence == 0.9
        assert np.all(answer.intervals.lower <= answer.intervals.upper)

    def test_query_folds_pending_partials(self, manager):
        campaign = manager.get("demo")
        campaign.accumulator.add_reports([0, 1])
        pending = campaign.session.new_accumulator().add_reports([2, 3, 3])
        answer = manager.query("demo", pending=[pending])
        assert answer.num_reports == 5
        # the campaign's live accumulator must not be mutated by the query
        assert campaign.num_reports == 2

    def test_query_payload_round_trips_json(self, manager):
        import json

        manager.get("demo").accumulator.add_reports([0, 0, 5])
        payload = manager.query("demo").to_json()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["num_reports"] == 3
        assert len(payload["estimates"]) == 8
