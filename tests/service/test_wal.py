"""Durable ingest WAL: framing, group commit, torn tails, truncation.

The recovery contract is the whole point: after any single crash the log
must replay to exactly the acked records — a torn final write is cut, a
flipped bit anywhere else refuses loudly, and no decoded record is ever
anything but byte-identical to what was appended.  The hypothesis fuzz
section drives that contract with arbitrary truncations and bit flips.
"""

import asyncio
import os
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ServiceError
from repro.service import WriteAheadLog
from repro.service.wal import (
    KIND_ABORT,
    KIND_FRAMES,
    KIND_JSON_BATCH,
    KIND_JSON_SINGLE,
    KIND_PARTIAL,
    encode_record,
    read_segment,
)

KINDS = (KIND_JSON_SINGLE, KIND_JSON_BATCH, KIND_FRAMES, KIND_PARTIAL)


def wal_for(tmp_path, **kwargs):
    kwargs.setdefault("segment_bytes", 1024)
    kwargs.setdefault("fsync", False)
    return WriteAheadLog(tmp_path / "wal", **kwargs)


async def append_bodies(wal, bodies, *, campaign="demo"):
    return [
        await wal.append(KIND_JSON_BATCH, body, campaign=campaign)
        for body in bodies
    ]


def write_raw_segment(directory, records, *, first_seq=None):
    """Byte-concatenate encoded records into a correctly named segment."""
    directory.mkdir(parents=True, exist_ok=True)
    first = first_seq if first_seq is not None else records[0][0]
    path = directory / f"segment-{first:016d}.wal"
    path.write_bytes(
        b"".join(
            encode_record(seq, kind, body, campaign=campaign)
            for seq, kind, body, campaign in records
        )
    )
    return path


class TestRecordFraming:
    def test_roundtrip_through_segment(self, tmp_path):
        rows = [
            (1, KIND_JSON_SINGLE, b'{"v": 1}', ""),
            (2, KIND_FRAMES, bytes(range(20)), ""),
            (3, KIND_PARTIAL, b'{"edge": "e1"}', "demo"),
        ]
        path = write_raw_segment(tmp_path, rows)
        records, valid = read_segment(path)
        assert valid == path.stat().st_size
        assert [
            (r.sequence, r.kind, r.body, r.campaign) for r in records
        ] == rows

    def test_unknown_kind_rejected_at_encode(self):
        with pytest.raises(ServiceError, match="kind"):
            encode_record(1, 99, b"")

    def test_sequence_gap_in_segment_rejected(self, tmp_path):
        path = write_raw_segment(
            tmp_path,
            [(1, KIND_JSON_BATCH, b"a", ""), (3, KIND_JSON_BATCH, b"b", "")],
        )
        with pytest.raises(ServiceError, match="jumps"):
            read_segment(path)

    def test_flipped_bit_with_valid_record_after_rejected(self, tmp_path):
        rows = [(i, KIND_JSON_BATCH, b"x" * 40, "") for i in range(1, 4)]
        path = write_raw_segment(tmp_path, rows)
        raw = bytearray(path.read_bytes())
        mid = len(encode_record(1, KIND_JSON_BATCH, b"x" * 40)) + 30
        raw[mid] ^= 0xFF  # corrupt record 2's body; record 3 stays valid
        path.write_bytes(bytes(raw))
        with pytest.raises(ServiceError, match="CRC32"):
            read_segment(path)

    def test_flipped_bit_in_final_record_cuts_like_a_torn_tail(self, tmp_path):
        rows = [(i, KIND_JSON_BATCH, b"x" * 40, "") for i in range(1, 4)]
        path = write_raw_segment(tmp_path, rows)
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0xFF  # damage confined to the tail: torn write
        path.write_bytes(bytes(raw))
        records, valid = read_segment(path)
        assert [r.sequence for r in records] == [1, 2]
        assert valid < len(raw)


class TestWriteAheadLog:
    def test_append_scan_roundtrip(self, tmp_path):
        async def run():
            wal = wal_for(tmp_path)
            await wal.start()
            bodies = [f"body-{i}".encode() for i in range(5)]
            sequences = await append_bodies(wal, bodies)
            await wal.stop()
            return bodies, sequences

        bodies, sequences = asyncio.run(run())
        assert sequences == [1, 2, 3, 4, 5]
        recovered = WriteAheadLog(tmp_path / "wal", fsync=False)
        records = recovered.scan()
        assert [r.body for r in records] == bodies
        assert all(r.campaign == "demo" for r in records)
        assert recovered.last_sequence == 5

    def test_group_commit_covers_concurrent_appends(self, tmp_path):
        async def run():
            wal = wal_for(tmp_path)
            await wal.start()
            await asyncio.gather(
                *(wal.append(KIND_JSON_BATCH, b"x" * 32) for _ in range(40))
            )
            batches = wal.fsync_batches_total
            await wal.stop()
            return batches

        batches = asyncio.run(run())
        assert batches < 40  # at least some appends shared an fsync

    def test_rotation_by_size_and_cross_segment_scan(self, tmp_path):
        async def run():
            wal = wal_for(tmp_path, segment_bytes=1024)
            await wal.start()
            await append_bodies(wal, [os.urandom(300) for _ in range(12)])
            count = wal.segment_count
            await wal.stop()
            return count

        count = asyncio.run(run())
        assert count > 1
        recovered = wal_for(tmp_path)
        assert [r.sequence for r in recovered.scan()] == list(range(1, 13))

    def test_torn_tail_is_cut_and_file_truncated(self, tmp_path):
        async def run():
            wal = wal_for(tmp_path)
            await wal.start()
            await append_bodies(wal, [b"a" * 50, b"b" * 50])
            await wal.stop()

        asyncio.run(run())
        [path] = wal_for(tmp_path).segment_paths()
        intact = path.stat().st_size
        torn = encode_record(3, KIND_JSON_BATCH, b"c" * 50)[:-20]
        with open(path, "ab") as handle:
            handle.write(torn)
        records = wal_for(tmp_path).scan()
        assert [r.sequence for r in records] == [1, 2]
        assert path.stat().st_size == intact  # damage physically removed

    def test_cross_segment_gap_rejected(self, tmp_path):
        directory = tmp_path / "wal"
        write_raw_segment(directory, [(1, KIND_JSON_BATCH, b"a", "")])
        write_raw_segment(directory, [(5, KIND_JSON_BATCH, b"b", "")])
        with pytest.raises(ServiceError, match="gap"):
            WriteAheadLog(directory, fsync=False).scan()

    def test_abort_tombstones(self, tmp_path):
        async def run():
            wal = wal_for(tmp_path)
            await wal.start()
            kept = await wal.append(KIND_JSON_BATCH, b"kept")
            doomed = await wal.append(KIND_JSON_BATCH, b"doomed")
            await wal.append_abort(doomed)
            await wal.stop()
            return kept, doomed

        kept, doomed = asyncio.run(run())
        records = wal_for(tmp_path).scan()
        aborted = WriteAheadLog.aborted_sequences(records)
        assert aborted == {doomed}
        live = [
            r.sequence
            for r in records
            if r.kind != KIND_ABORT and r.sequence not in aborted
        ]
        assert live == [kept]

    def test_truncate_removes_covered_segments_only(self, tmp_path):
        async def run():
            wal = wal_for(tmp_path, segment_bytes=1024)
            await wal.start()
            await append_bodies(wal, [os.urandom(300) for _ in range(12)])
            before = wal.segment_count
            removed = wal.truncate(wal.last_sequence - 1)
            survivors = [r.sequence for r in wal.read_records()]
            # the active segment holds the uncovered record: must survive
            assert wal.last_sequence in survivors
            # appends keep working after truncation
            await wal.append(KIND_JSON_BATCH, b"after")
            await wal.stop()
            return before, removed, wal.segment_count

        before, removed, after = asyncio.run(run())
        assert removed > 0
        assert after < before
        assert wal_for(tmp_path).scan()[-1].body == b"after"

    def test_read_records_filters(self, tmp_path):
        async def run():
            wal = wal_for(tmp_path)
            await wal.start()
            await append_bodies(wal, [b"a", b"b", b"c", b"d"])
            by_min = [r.sequence for r in wal.read_records(min_sequence=2)]
            by_set = [r.body for r in wal.read_records(sequences={1, 3})]
            await wal.stop()
            return by_min, by_set

        by_min, by_set = asyncio.run(run())
        assert by_min == [3, 4]
        assert by_set == [b"a", b"c"]

    def test_write_failure_fails_appenders_instead_of_hanging(self, tmp_path):
        """An I/O error mid-flush must surface to every waiting append as
        a ServiceError — never a hung future — and fail-stop the log (a
        partial batch may be on disk; the consumed sequences would leave
        a gap recovery refuses)."""

        async def run():
            wal = wal_for(tmp_path)
            await wal.start()
            await wal.append(KIND_JSON_BATCH, b"ok")

            def boom(batch):
                raise OSError("disk full")

            wal._flush_batch = boom
            results = await asyncio.wait_for(
                asyncio.gather(
                    *(wal.append(KIND_JSON_BATCH, b"doomed") for _ in range(4)),
                    return_exceptions=True,
                ),
                timeout=10,
            )
            assert len(results) == 4
            assert all(isinstance(r, ServiceError) for r in results)
            assert all("WAL write failed" in str(r) for r in results)
            # Fail-stop: later appends refuse immediately, even though
            # the underlying fault is gone.
            del wal._flush_batch
            with pytest.raises(ServiceError, match="WAL write failed"):
                await wal.append(KIND_JSON_BATCH, b"after")
            await asyncio.wait_for(wal.stop(), timeout=10)

        asyncio.run(run())
        records = WriteAheadLog(tmp_path / "wal", fsync=False).scan()
        assert [r.body for r in records] == [b"ok"]

    def test_rejects_tiny_segment_bytes(self, tmp_path):
        with pytest.raises(ServiceError, match="segment_bytes"):
            WriteAheadLog(tmp_path / "wal", segment_bytes=16)


# -- property-based recovery fuzzing ---------------------------------------

record_bodies = st.lists(
    st.binary(min_size=0, max_size=120), min_size=1, max_size=12
)


def build_segment(bodies):
    return [
        (seq, KINDS[seq % len(KINDS)], body, "camp" if seq % 3 == 0 else "")
        for seq, body in enumerate(bodies, start=1)
    ]


@settings(deadline=None, max_examples=60)
@given(bodies=record_bodies, cut=st.integers(min_value=0))
def test_fuzz_truncation_recovers_exact_prefix(tmp_path_factory, bodies, cut):
    """Cutting the log at ANY byte offset recovers a clean record prefix —
    never a crash, never a mangled record."""
    directory = tmp_path_factory.mktemp("fuzz-cut")
    rows = build_segment(bodies)
    path = write_raw_segment(directory, rows)
    raw = path.read_bytes()
    path.write_bytes(raw[: cut % (len(raw) + 1)])
    records = WriteAheadLog(directory, fsync=False).scan()
    assert [
        (r.sequence, r.kind, r.body, r.campaign) for r in records
    ] == rows[: len(records)]


@settings(deadline=None, max_examples=60)
@given(
    bodies=record_bodies,
    position=st.integers(min_value=0),
    flip=st.integers(min_value=1, max_value=255),
)
def test_fuzz_bit_flips_never_admit_corrupt_records(
    tmp_path_factory, bodies, position, flip
):
    """Flipping ANY byte either fails loudly or cuts a valid tail — a
    recovered record is always byte-identical to what was appended."""
    directory = tmp_path_factory.mktemp("fuzz-flip")
    rows = build_segment(bodies)
    path = write_raw_segment(directory, rows)
    raw = bytearray(path.read_bytes())
    raw[position % len(raw)] ^= flip
    path.write_bytes(bytes(raw))
    try:
        records = WriteAheadLog(directory, fsync=False).scan()
    except ServiceError:
        return  # loud refusal is a correct outcome
    for record, row in zip(records, rows):
        assert (record.sequence, record.kind, record.body, record.campaign) == row


@settings(deadline=None, max_examples=30)
@given(
    bodies=st.lists(
        st.binary(min_size=50, max_size=200), min_size=4, max_size=10
    ),
    segment_bytes=st.integers(min_value=1024, max_value=2048),
    cut=st.integers(min_value=0, max_value=400),
)
def test_fuzz_rotated_log_with_torn_final_segment(
    tmp_path_factory, bodies, segment_bytes, cut
):
    """Write through real rotation, then tear the final segment's tail:
    recovery returns a prefix and appending afterwards stays contiguous."""
    directory = tmp_path_factory.mktemp("fuzz-rot")

    async def write():
        wal = WriteAheadLog(
            directory, segment_bytes=segment_bytes, fsync=False
        )
        await wal.start()
        await append_bodies(wal, bodies)
        await wal.stop()

    asyncio.run(write())
    last = WriteAheadLog(directory, fsync=False).segment_paths()[-1]
    raw = last.read_bytes()
    last.write_bytes(raw[: max(0, len(raw) - cut)])
    wal = WriteAheadLog(directory, segment_bytes=segment_bytes, fsync=False)
    records = wal.scan()
    expected = [
        (seq, KIND_JSON_BATCH, body, "demo")
        for seq, body in enumerate(bodies, start=1)
    ]
    assert [
        (r.sequence, r.kind, r.body, r.campaign) for r in records
    ] == expected[: len(records)]

    async def append_more():
        await wal.start()
        sequence = await wal.append(KIND_JSON_BATCH, b"post-recovery")
        await wal.stop()
        return sequence

    sequence = asyncio.run(append_more())
    assert sequence == (records[-1].sequence if records else 0) + 1
    final = WriteAheadLog(directory, fsync=False).scan()
    assert final[-1].body == b"post-recovery"
    assert [r.sequence for r in final] == list(range(1, sequence + 1))


def test_abort_body_format_stable():
    # offline tooling decodes tombstones with struct: pin the layout
    record = encode_record(9, KIND_ABORT, struct.pack("<Q", 7))
    assert struct.unpack("<Q", record[-8:])[0] == 7
