"""Two-tier edge-aggregation tests: partials endpoint + EdgeAggregator.

The root-side ``POST /v1/campaigns/<name>/partials`` endpoint and the
:class:`EdgeAggregator` run over real sockets (via :class:`ServiceThread`),
so every test exercises the same HTTP path production traffic takes.  The
failure-path tests (unreachable root, lost replies, retired rounds, edge
restarts) inject faults through the edge's ``upstream_factory`` hook —
deterministic, no monkeypatching of sockets.
"""

import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.exceptions import ServiceError, ServiceHTTPError
from repro.protocol import ShardAccumulator
from repro.service import (
    CollectionService,
    EdgeAggregator,
    ServiceClient,
    ServiceThread,
)


@pytest.fixture
def root():
    """A running root service + connected client (fast flush)."""
    service = CollectionService(flush_interval=0.02, flush_reports=512)
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    try:
        yield service, thread, client
    finally:
        client.close()
        if thread._thread is not None:
            thread.stop()


def make_campaign(client, name="demo", domain_size=8, **kwargs):
    return client.create_campaign(
        name,
        workload="Histogram",
        domain_size=domain_size,
        epsilon=1.0,
        mechanism="Randomized Response",
        **kwargs,
    )


def fold_serially(reports, num_outputs=8, round_id=0):
    accumulator = ShardAccumulator(num_outputs, round_id)
    accumulator.add_reports(np.asarray(reports, dtype=np.int64))
    return accumulator


def start_edge(root_thread, **kwargs):
    """An EdgeAggregator on its own background loop thread."""
    edge = EdgeAggregator(root_thread.host, root_thread.port, **kwargs)
    thread = ServiceThread(edge)
    host, port = thread.start()
    return edge, thread, host, port


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestPartialsEndpoint:
    """Root-side semantics of POST /v1/campaigns/<name>/partials."""

    def test_partial_is_folded_bit_identically(self, root):
        service, _, client = root
        make_campaign(client)
        reports = [0, 1, 1, 7, 3, 3, 3]
        payload = fold_serially(reports).to_bytes()
        receipt = client.send_partial(
            "demo", edge_id="edge-a", sequence=1, payload=payload
        )
        assert receipt["duplicate"] is False
        assert receipt["accepted"] == len(reports)
        assert receipt["last_sequence"] == 1
        assert client.query("demo", sync=True)["num_reports"] == len(reports)
        folded = service.manager.get("demo").accumulator.histogram
        assert np.array_equal(folded, fold_serially(reports).histogram)

    def test_duplicate_sequence_is_acknowledged_not_folded(self, root):
        """Satellite: a duplicate forward is rejected by sequence number —
        acked as seen, never double-counted."""
        _, _, client = root
        make_campaign(client)
        payload = fold_serially([1, 2, 3]).to_bytes()
        client.send_partial("demo", edge_id="edge-a", sequence=1, payload=payload)
        retried = client.send_partial(
            "demo", edge_id="edge-a", sequence=1, payload=payload
        )
        assert retried["duplicate"] is True
        assert retried["accepted"] == 0
        assert retried["last_sequence"] == 1
        # Sequences below the ledger are duplicates too (reordered retry).
        stale = client.send_partial(
            "demo", edge_id="edge-a", sequence=0 + 1, payload=payload
        )
        assert stale["duplicate"] is True
        assert client.query("demo", sync=True)["num_reports"] == 3
        # A different edge has an independent ledger.
        other = client.send_partial(
            "demo", edge_id="edge-b", sequence=1, payload=payload
        )
        assert other["duplicate"] is False
        assert client.query("demo", sync=True)["num_reports"] == 6

    def test_partial_validation_errors(self, root):
        _, _, client = root
        make_campaign(client)
        payload = fold_serially([0]).to_bytes()
        with pytest.raises(ServiceHTTPError, match="unknown campaign") as info:
            client.send_partial("ghost", edge_id="e1", sequence=1, payload=payload)
        assert info.value.status == 404
        with pytest.raises(ServiceHTTPError, match="invalid edge id") as info:
            client.send_partial(
                "demo", edge_id="no spaces", sequence=1, payload=payload
            )
        assert info.value.status == 400
        with pytest.raises(ServiceHTTPError, match="sequence") as info:
            client.send_partial("demo", edge_id="e1", sequence=0, payload=payload)
        assert info.value.status == 400
        # Corrupt accumulator bytes are a protocol fault, not a 500.
        with pytest.raises(ServiceHTTPError) as info:
            client.send_partial(
                "demo", edge_id="e1", sequence=1, payload=b"not an accumulator"
            )
        assert info.value.status == 400
        # Output-alphabet mismatch is refused before any folding.
        wrong = ShardAccumulator(5, 0)
        wrong.add_reports(np.array([0, 1]))
        with pytest.raises(ServiceHTTPError, match="outputs") as info:
            client.send_partial(
                "demo", edge_id="e1", sequence=1, payload=wrong.to_bytes()
            )
        assert info.value.status == 400
        # Nothing slipped through.
        assert client.query("demo", sync=True)["num_reports"] == 0

    def test_bad_base64_is_a_400(self, root):
        _, _, client = root
        make_campaign(client)
        with pytest.raises(ServiceHTTPError, match="base64") as info:
            client._request(
                "POST",
                "/v1/campaigns/demo/partials",
                {"edge": "e1", "sequence": 1, "accumulator": "!!!not-base64!!!"},
            )
        assert info.value.status == 400

    def test_stale_round_partial_refused_with_400(self, root):
        """Satellite: a partial tagged with a retired round is refused with
        the ProtocolError family, mapped to HTTP 400."""
        _, _, client = root
        make_campaign(client, name="adapt", adaptive={"rounds": 2})
        outputs = client.campaign("adapt")["num_outputs"]
        round1 = fold_serially([1, 1, 2], outputs, round_id=1).to_bytes()
        receipt = client.send_partial(
            "adapt", edge_id="e1", sequence=1, payload=round1
        )
        assert receipt["accepted"] == 3
        client.advance_campaign("adapt")
        with pytest.raises(ServiceHTTPError, match="round") as info:
            client.send_partial("adapt", edge_id="e1", sequence=2, payload=round1)
        assert info.value.status == 400
        # Untagged (round-0) partials are ambiguous on adaptive campaigns:
        # the edge cannot have folded them against a known strategy.
        untagged = fold_serially([1], outputs, round_id=0).to_bytes()
        with pytest.raises(ServiceHTTPError, match="round") as info:
            client.send_partial("adapt", edge_id="e1", sequence=2, payload=untagged)
        assert info.value.status == 400
        # A partial for the live round is accepted, and the failed attempts
        # did not consume sequence numbers.
        outputs = client.campaign("adapt")["num_outputs"]
        round2 = fold_serially([4, 4], outputs, round_id=2).to_bytes()
        receipt = client.send_partial(
            "adapt", edge_id="e1", sequence=2, payload=round2
        )
        assert receipt["duplicate"] is False and receipt["accepted"] == 2

    def test_edge_sequences_survive_checkpoint_recovery(self, tmp_path):
        """The idempotency ledger is persisted: a forward retried across a
        root restart is still acknowledged as a duplicate."""
        service = CollectionService(
            checkpoint_dir=tmp_path, checkpoint_interval=600.0
        )
        thread = ServiceThread(service)
        thread.start()
        client = ServiceClient(thread.host, thread.port)
        try:
            make_campaign(client)
            payload = fold_serially([2, 2, 5]).to_bytes()
            client.send_partial(
                "demo", edge_id="edge-a", sequence=1, payload=payload
            )
            client.checkpoint()
        finally:
            client.close()
            thread.stop(final_checkpoint=False)  # simulated crash
        recovered = CollectionService(checkpoint_dir=tmp_path)
        thread = ServiceThread(recovered)
        thread.start()
        client = ServiceClient(thread.host, thread.port)
        try:
            retried = client.send_partial(
                "demo", edge_id="edge-a", sequence=1, payload=payload
            )
            assert retried["duplicate"] is True
            assert client.query("demo", sync=True)["num_reports"] == 3
            fresh = client.send_partial(
                "demo", edge_id="edge-a", sequence=2, payload=payload
            )
            assert fresh["duplicate"] is False
            assert client.query("demo", sync=True)["num_reports"] == 6
        finally:
            client.close()
            thread.stop()


class TestEdgeAggregator:
    """The edge tier end to end, over real sockets on both hops."""

    def test_two_tier_matches_serial_fold_bit_identically(self, root):
        service, root_thread, client = root
        make_campaign(client)
        edge, edge_thread, host, port = start_edge(
            root_thread, flush_interval=0.02, forward_interval=0.05
        )
        rng = np.random.default_rng(7)
        reports = rng.integers(0, 8, size=5000)
        edge_client = ServiceClient(host, port, transport="binary")
        try:
            health = edge_client.healthz()
            assert health["role"] == "edge"
            assert health["edge_id"] == edge.edge_id
            for start in range(0, len(reports), 500):
                edge_client.send_reports("demo", reports[start : start + 500])
        finally:
            edge_client.close()
            edge_thread.stop()  # graceful drain forwards everything buffered
        assert client.query("demo", sync=True)["num_reports"] == len(reports)
        folded = service.manager.get("demo").accumulator.histogram
        assert np.array_equal(folded, fold_serially(reports).histogram)
        assert edge.reports_lost == 0
        assert edge.reports_forwarded == len(reports)

    def test_edge_proxies_campaign_reads_to_the_root(self, root):
        _, root_thread, client = root
        make_campaign(client)
        _, edge_thread, host, port = start_edge(root_thread)
        edge_client = ServiceClient(host, port)
        try:
            assert [c["name"] for c in edge_client.campaigns()] == ["demo"]
            assert edge_client.campaign("demo")["num_outputs"] == 8
            strategy = edge_client.strategy("demo")
            assert strategy.shape == (8, 8)
            with pytest.raises(ServiceHTTPError) as info:
                edge_client.campaign("ghost")
            assert info.value.status == 404
        finally:
            edge_client.close()
            edge_thread.stop()

    def test_unknown_campaign_report_is_rejected_at_the_edge(self, root):
        _, root_thread, client = root
        make_campaign(client)
        _, edge_thread, host, port = start_edge(root_thread)
        edge_client = ServiceClient(host, port)
        try:
            with pytest.raises(ServiceHTTPError) as info:
                edge_client.send_reports("ghost", [1, 2])
            assert info.value.status == 400
        finally:
            edge_client.close()
            edge_thread.stop()

    def test_unreachable_root_buffers_and_retries_without_loss(self, root):
        """Satellite: upstream unreachable at flush time — the partial stays
        in the outbox under backoff and lands once the root returns."""
        service, root_thread, client = root
        make_campaign(client)
        down = {"flag": False}
        real_host, real_port = root_thread.host, root_thread.port

        def factory():
            if down["flag"]:
                raise ConnectionRefusedError("injected: root is down")
            return ServiceClient(real_host, real_port)

        edge, edge_thread, host, port = start_edge(
            root_thread,
            flush_interval=0.02,
            forward_interval=0.05,
            retry_base=0.02,
            retry_cap=0.1,
            upstream_factory=factory,
        )
        edge_client = ServiceClient(host, port)
        try:
            down["flag"] = True
            edge_client.send_reports("demo", [1, 2, 3, 4, 5])
            assert wait_until(lambda: edge._m_forward_retries.value > 0)
            assert len(edge._outbox) >= 1
            assert client.query("demo", sync=True)["num_reports"] == 0
            down["flag"] = False
            assert wait_until(
                lambda: client.query("demo", sync=True)["num_reports"] == 5
            )
            assert edge.reports_lost == 0
            assert edge.forwards_applied == 1
        finally:
            edge_client.close()
            edge_thread.stop()
        folded = service.manager.get("demo").accumulator.histogram
        assert np.array_equal(
            folded, fold_serially([1, 2, 3, 4, 5]).histogram
        )

    def test_lost_reply_retry_is_deduplicated(self, root):
        """The at-most-once half of exactly-once: the root applies a forward
        but the reply is lost; the retry is acked as a duplicate."""
        _, root_thread, client = root
        make_campaign(client)
        real_host, real_port = root_thread.host, root_thread.port
        lose_next_reply = {"flag": False}

        class LostReplyClient(ServiceClient):
            def send_partial(self, campaign, **kwargs):
                receipt = super().send_partial(campaign, **kwargs)
                if lose_next_reply["flag"]:
                    lose_next_reply["flag"] = False
                    raise ConnectionResetError("injected: reply lost")
                return receipt

        edge, edge_thread, host, port = start_edge(
            root_thread,
            flush_interval=0.02,
            forward_interval=0.05,
            retry_base=0.02,
            upstream_factory=lambda: LostReplyClient(real_host, real_port),
        )
        edge_client = ServiceClient(host, port)
        try:
            lose_next_reply["flag"] = True
            edge_client.send_reports("demo", [3, 3, 3])
            assert wait_until(lambda: edge.forwards_duplicate == 1)
            assert client.query("demo", sync=True)["num_reports"] == 3
            assert edge.reports_lost == 0
        finally:
            edge_client.close()
            edge_thread.stop()
        # Not double-counted by the drain either.
        assert client.query("demo", sync=True)["num_reports"] == 3

    def test_graceful_stop_forwards_the_final_partial(self, root):
        """Satellite: the drain path behind SIGTERM — reports buffered at
        the edge when the stop begins still reach the root."""
        _, root_thread, client = root
        make_campaign(client)
        # Forward triggers that never fire during the test: only the
        # graceful stop can ship the partial.
        edge, edge_thread, host, port = start_edge(
            root_thread, flush_interval=0.02, forward_interval=600.0
        )
        edge_client = ServiceClient(host, port)
        try:
            edge_client.send_reports("demo", [7] * 40)
            wait_until(lambda: edge.pipeline.stats.ingested == 40)
            assert client.query("demo", sync=True)["num_reports"] == 0
        finally:
            edge_client.close()
            edge_thread.stop()
        assert client.query("demo", sync=True)["num_reports"] == 40
        assert edge.reports_lost == 0

    def test_sigterm_drains_a_real_edge_process(self, root, tmp_path):
        """Satellite: `repro edge` under SIGTERM forwards the final partial
        before exiting — the full CLI entry point, not just stop()."""
        _, root_thread, client = root
        make_campaign(client)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "edge",
                "--port",
                "0",
                "--upstream-host",
                root_thread.host,
                "--upstream-port",
                str(root_thread.port),
                "--edge-id",
                "edge-sigterm",
                "--forward-interval",
                "600",
                "--flush-interval",
                "0.02",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            match = None
            seen = []
            for _ in range(20):  # log lines may precede the banner
                line = process.stdout.readline()
                if not line:
                    break
                seen.append(line)
                match = re.search(r"http://([\d.]+):(\d+)", line)
                if match:
                    break
            assert match, f"no listen banner in {seen!r}"
            edge_client = ServiceClient(match.group(1), int(match.group(2)))
            try:
                edge_client.send_reports("demo", [5] * 25)
                assert wait_until(
                    lambda: edge_client.metrics()["ingest"]["ingested"]
                    == 25
                )
            finally:
                edge_client.close()
            assert client.query("demo", sync=True)["num_reports"] == 0
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
            assert process.returncode == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        assert client.query("demo", sync=True)["num_reports"] == 25

    def test_restarted_edge_with_reused_id_resynchronizes(self, root):
        """An edge restarted under the same id starts its sequence counter
        over; the root's duplicate ack triggers a resync instead of
        silently discarding the new reports."""
        _, root_thread, client = root
        make_campaign(client)
        edge1, thread1, host1, port1 = start_edge(
            root_thread,
            edge_id="edge-stable",
            flush_interval=0.02,
            forward_interval=0.05,
        )
        edge_client = ServiceClient(host1, port1)
        try:
            edge_client.send_reports("demo", [1, 1])
            assert wait_until(
                lambda: client.query("demo", sync=True)["num_reports"] == 2
            )
        finally:
            edge_client.close()
            thread1.stop()
        edge2, thread2, host2, port2 = start_edge(
            root_thread,
            edge_id="edge-stable",
            flush_interval=0.02,
            forward_interval=0.05,
            retry_base=0.02,
        )
        edge_client = ServiceClient(host2, port2)
        try:
            edge_client.send_reports("demo", [2, 2, 2])
            assert wait_until(
                lambda: client.query("demo", sync=True)["num_reports"] == 5
            )
            assert edge2.reports_lost == 0
            # The resync re-cut the payload under a fresh sequence.
            assert edge2.manager.peek("demo").sequence >= 2
        finally:
            edge_client.close()
            thread2.stop()

    def test_round_advance_under_the_edge(self, root):
        """A root round advance strands the edge's buffered round-r reports:
        the forward is permanently rejected (counted lost, never folded into
        the wrong round) and the refreshed mirror accepts the new round."""
        _, root_thread, client = root
        make_campaign(client, name="adapt", adaptive={"rounds": 2})
        edge, edge_thread, host, port = start_edge(
            root_thread,
            flush_interval=0.02,
            forward_interval=600.0,
            retry_base=0.02,
        )
        edge_client = ServiceClient(host, port)
        try:
            edge_client.send_reports("adapt", [1, 1, 1], round_id=1)
            assert wait_until(
                lambda: edge.pipeline.stats.ingested == 3
            )
            client.advance_campaign("adapt")
            # Force the stranded partial out now (the interval trigger is
            # parked at 10 minutes).
            mirror = edge.manager.peek("adapt")
            edge_thread.run_coroutine(_cut_now(edge, mirror))
            assert wait_until(lambda: edge.forwards_rejected == 1)
            assert edge.reports_lost == 3
            assert wait_until(
                lambda: edge.manager.peek("adapt").current_round == 2
            )
            edge_client.send_reports("adapt", [4, 4], round_id=2)
            edge_thread.run_coroutine(_drain_now(edge))
            assert client.query("adapt", sync=True)["num_reports"] == 2
        finally:
            edge_client.close()
            edge_thread.stop()

    def test_campaign_filter_requires_existing_campaigns(self, root):
        _, root_thread, _ = root
        edge = EdgeAggregator(
            root_thread.host, root_thread.port, campaigns=["ghost"]
        )
        with pytest.raises(ServiceError, match="ghost"):
            ServiceThread(edge).start()

    def test_constructor_validation(self):
        with pytest.raises(ServiceError, match="forward_reports"):
            EdgeAggregator("localhost", 1, forward_reports=0)
        with pytest.raises(ServiceError, match="forward_interval"):
            EdgeAggregator("localhost", 1, forward_interval=0.0)
        with pytest.raises(ServiceError, match="retry_base"):
            EdgeAggregator("localhost", 1, retry_base=0.5, retry_cap=0.1)


async def _cut_now(edge, mirror):
    await edge.pipeline.drain()
    edge._cut(mirror)


async def _drain_now(edge):
    """Flush the ingest pipeline, cut, and forward synchronously."""
    await edge.pipeline.drain()
    for mirror in edge.manager.campaigns():
        edge._cut(mirror)
    await edge._drain_outbox(10.0)
