"""Round-level harness for adaptive multi-round campaigns.

Covers deterministic round advancement, exact budget conservation through
the campaign lifecycle, round-tag rejection of stale cohorts, crash
recovery between the round checkpoint and the strategy swap, and the
cross-round query combination rule.
"""

import numpy as np
import pytest

from repro.exceptions import ProtocolError, ServiceError
from repro.postprocess import workload_confidence_intervals
from repro.service import (
    AdaptivePlan,
    CampaignManager,
    CheckpointStore,
    CollectionService,
    ServiceClient,
    ServiceThread,
)
from repro.service.ingest import resolve_round


def make_plan(num_rounds=3, **overrides) -> AdaptivePlan:
    options = dict(
        num_rounds=num_rounds,
        num_groups=2,
        selector_share=0.05,
        boost=4.0,
        iterations=15,
        restarts=1,
        seed=0,
    )
    options.update(overrides)
    return AdaptivePlan(**options)


def make_adaptive_manager(num_rounds=3, epsilon=2.0) -> CampaignManager:
    manager = CampaignManager()
    manager.create(
        "demo",
        workload="Prefix",
        domain_size=8,
        epsilon=epsilon,
        mechanism="Randomized Response",
        adaptive=make_plan(num_rounds),
    )
    return manager


def skewed_reports(session, count=400, seed=0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, session.num_outputs, size=count)


class TestAdaptivePlan:
    def test_json_round_trip(self):
        plan = make_plan(4, selector_share=0.1, boost=2.0)
        assert AdaptivePlan.from_json(plan.to_json()) == plan

    def test_from_json_accepts_short_aliases(self):
        plan = AdaptivePlan.from_json({"rounds": 2, "groups": 3})
        assert plan.num_rounds == 2
        assert plan.num_groups == 3

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(ServiceError, match="unknown"):
            AdaptivePlan.from_json({"rounds": 2, "surprise": 1})

    def test_validation(self):
        with pytest.raises(ServiceError):
            make_plan(num_rounds=1)
        with pytest.raises(ServiceError):
            make_plan(selector_share=1.5)
        with pytest.raises(ServiceError):
            make_plan(boost=0.0)
        with pytest.raises(ServiceError):
            make_plan(num_groups=0)

    def test_budgets_conserve_campaign_epsilon(self):
        from fractions import Fraction

        budgets = make_plan(3).budgets(1.7)
        assert sum(b.total for b in budgets) == Fraction(1.7)


class TestAdaptiveLifecycle:
    def test_creation_opens_round_one_with_ledger_debit(self):
        manager = make_adaptive_manager()
        campaign = manager.get("demo")
        assert campaign.current_round == 1
        assert campaign.accumulator.round_id == 1
        assert len(campaign.ledger) == 1
        assert campaign.ledger.round_spent(1) == campaign.ledger.spent
        # the round-1 strategy runs at round 1's collect budget, while the
        # campaign's advertised epsilon stays the full-campaign total
        budgets = campaign.adaptive.budgets(campaign.epsilon)
        assert campaign.session.epsilon == float(budgets[0].collect_epsilon)
        assert campaign.epsilon == 2.0

    def test_full_campaign_drains_the_ledger_exactly(self):
        manager = make_adaptive_manager(num_rounds=3)
        campaign = manager.get("demo")
        for _ in range(2):
            campaign.accumulator.add_reports(
                skewed_reports(campaign.session, seed=campaign.current_round)
            )
            manager.advance_round("demo")
        assert campaign.current_round == 3
        assert campaign.ledger.spent == campaign.ledger.total
        assert campaign.ledger.remaining == 0
        assert [record.round_id for record in campaign.rounds] == [1, 2]
        with pytest.raises(ServiceError, match="final round"):
            manager.advance_round("demo")

    def test_advance_reports_selection_and_budget(self):
        manager = make_adaptive_manager()
        campaign = manager.get("demo")
        campaign.accumulator.add_reports(skewed_reports(campaign.session))
        report = manager.advance_round("demo")
        assert report.from_round == 1
        assert report.to_round == 2
        assert 0 <= report.selected_group < 2
        assert len(report.scores) == 2
        document = report.to_json()
        assert document["round"] == 2
        assert document["selected_group"] == report.selected_group

    def test_advance_is_deterministic_across_managers(self):
        """Satellite: seeded round advancement is fully deterministic —
        same selection, same strategy, bit for bit."""
        outcomes = []
        for _ in range(2):
            manager = make_adaptive_manager()
            campaign = manager.get("demo")
            campaign.accumulator.add_reports(skewed_reports(campaign.session))
            report = manager.advance_round("demo")
            outcomes.append((report, campaign.session.strategy.probabilities))
        first, second = outcomes
        assert first[0].to_json() == second[0].to_json()
        assert np.array_equal(first[1], second[1])

    def test_stale_plan_commit_refused(self):
        manager = make_adaptive_manager()
        campaign = manager.get("demo")
        campaign.accumulator.add_reports(skewed_reports(campaign.session))
        stale = manager.plan_advance("demo")
        manager.advance_round("demo")
        session = manager.optimize_round_strategy(stale)
        with pytest.raises(ServiceError, match="stale advance"):
            manager.commit_advance(stale, session)

    def test_non_adaptive_campaign_refuses_rounds(self):
        manager = CampaignManager()
        manager.create(
            "plain",
            workload="Histogram",
            domain_size=4,
            epsilon=1.0,
            mechanism="Randomized Response",
        )
        with pytest.raises(ServiceError, match="not adaptive"):
            manager.advance_round("plain")
        assert manager.get("plain").current_round == 0
        assert manager.get("plain").accumulator.round_id == 0

    def test_query_combines_rounds_with_independent_errors(self):
        manager = make_adaptive_manager()
        campaign = manager.get("demo")
        campaign.accumulator.add_reports(skewed_reports(campaign.session, seed=1))
        manager.advance_round("demo")
        campaign.accumulator.add_reports(skewed_reports(campaign.session, seed=2))

        parts = [
            (record.session, record.accumulator) for record in campaign.rounds
        ] + [(campaign.session, campaign.accumulator)]
        parts = [(s, a) for s, a in parts if a.num_reports]
        assert len(parts) == 2
        per_round = [
            workload_confidence_intervals(
                session.workload,
                session.strategy,
                session.operator,
                accumulator.histogram,
                confidence=0.95,
            )
            for session, accumulator in parts
        ]
        answer = manager.query("demo")
        assert answer.round == 2
        assert answer.num_reports == 800
        assert np.array_equal(
            answer.intervals.estimates,
            np.asarray(per_round[0].estimates) + np.asarray(per_round[1].estimates),
        )
        assert np.array_equal(
            answer.intervals.standard_errors,
            np.sqrt(
                np.asarray(per_round[0].standard_errors) ** 2
                + np.asarray(per_round[1].standard_errors) ** 2
            ),
        )

    def test_describe_exposes_round_state(self):
        manager = make_adaptive_manager()
        campaign = manager.get("demo")
        campaign.accumulator.add_reports(skewed_reports(campaign.session))
        manager.advance_round("demo")
        document = campaign.describe()
        assert document["round"] == 2
        adaptive = document["adaptive"]
        assert adaptive["current_round"] == 2
        assert len(adaptive["rounds"]) == 1
        assert adaptive["rounds"][0]["round"] == 1
        assert adaptive["ledger"]["total_epsilon"] == 2.0
        assert document["epsilon"] == 2.0


class TestRoundResolution:
    class Stub:
        name = "stub"

        def __init__(self, adaptive, current_round):
            self.adaptive = adaptive
            self.current_round = current_round

    def test_untagged_folds_into_current_round(self):
        adaptive = self.Stub(adaptive=object(), current_round=2)
        assert resolve_round(adaptive, None) == 2
        assert resolve_round(adaptive, 0) == 2
        assert resolve_round(adaptive, 2) == 2

    def test_stale_and_unknown_tags_raise(self):
        adaptive = self.Stub(adaptive=object(), current_round=2)
        with pytest.raises(ProtocolError, match="stale round tag 1"):
            resolve_round(adaptive, 1)
        with pytest.raises(ProtocolError, match="unknown round tag 3"):
            resolve_round(adaptive, 3)

    def test_tags_on_non_adaptive_campaigns_raise(self):
        plain = self.Stub(adaptive=None, current_round=0)
        assert resolve_round(plain, None) == 0
        with pytest.raises(ProtocolError, match="not adaptive"):
            resolve_round(plain, 1)

    def test_non_integer_tags_raise(self):
        plain = self.Stub(adaptive=None, current_round=0)
        with pytest.raises(ProtocolError, match="integer"):
            resolve_round(plain, True)
        with pytest.raises(ProtocolError, match="integer"):
            resolve_round(plain, "2")


class TestCheckpointRecovery:
    def test_mid_campaign_recovery_is_bit_identical(self, tmp_path):
        manager = make_adaptive_manager()
        campaign = manager.get("demo")
        campaign.accumulator.add_reports(skewed_reports(campaign.session, seed=1))
        manager.advance_round("demo")
        campaign.accumulator.add_reports(skewed_reports(campaign.session, seed=2))
        store = CheckpointStore(tmp_path)
        store.save(manager)

        recovered = CheckpointStore(tmp_path).load()
        restored = recovered.get("demo")
        assert restored.current_round == 2
        assert restored.ledger == campaign.ledger
        assert restored.adaptive == campaign.adaptive
        assert restored.accumulator == campaign.accumulator
        assert len(restored.rounds) == 1
        assert restored.rounds[0].accumulator == campaign.rounds[0].accumulator
        assert restored.rounds[0].selected_group == campaign.rounds[0].selected_group
        assert np.array_equal(
            restored.rounds[0].session.strategy.probabilities,
            campaign.rounds[0].session.strategy.probabilities,
        )
        original_answer = manager.query("demo")
        recovered_answer = recovered.query("demo")
        assert np.array_equal(
            recovered_answer.intervals.estimates,
            original_answer.intervals.estimates,
        )
        assert np.array_equal(
            recovered_answer.intervals.standard_errors,
            original_answer.intervals.standard_errors,
        )

    def test_recovered_campaign_replays_the_next_advance_identically(
        self, tmp_path
    ):
        manager = make_adaptive_manager()
        campaign = manager.get("demo")
        campaign.accumulator.add_reports(skewed_reports(campaign.session, seed=1))
        CheckpointStore(tmp_path).save(manager)

        recovered = CheckpointStore(tmp_path).load()
        original = manager.advance_round("demo")
        replayed = recovered.advance_round("demo")
        assert replayed.to_json() == original.to_json()
        assert np.array_equal(
            recovered.get("demo").session.strategy.probabilities,
            manager.get("demo").session.strategy.probabilities,
        )


@pytest.fixture
def adaptive_live(tmp_path):
    """A checkpointing service + client with a 2-round adaptive campaign."""
    service = CollectionService(
        checkpoint_dir=tmp_path,
        checkpoint_interval=3600.0,
        flush_interval=0.02,
        flush_reports=512,
    )
    thread = ServiceThread(service)
    host, port = thread.start()
    client = ServiceClient(host, port)
    client.create_campaign(
        "demo",
        workload="Prefix",
        domain_size=8,
        epsilon=2.0,
        mechanism="Randomized Response",
        adaptive={"rounds": 2, "groups": 2, "iterations": 15, "seed": 0},
    )
    try:
        yield thread, client, tmp_path
    finally:
        client.close()
        thread.stop()


class TestServiceAdvance:
    def test_http_advance_rotates_the_round(self, adaptive_live):
        _, client, _ = adaptive_live
        rng = np.random.default_rng(0)
        client.send_reports("demo", rng.integers(0, 8, size=300))
        assert client.query("demo", sync=True)["round"] == 1

        report = client.advance_campaign("demo")
        assert report["round"] == 2
        assert report["from_round"] == 1
        assert 0 <= report["selected_group"] < 2

        document = client.campaign("demo")
        assert document["round"] == 2
        client.send_reports("demo", rng.integers(0, 8, size=100))
        answer = client.query("demo", sync=True)
        assert answer["round"] == 2
        assert answer["num_reports"] == 400

    def test_stale_round_reports_rejected_loudly(self, adaptive_live):
        """Satellite: a cohort still randomizing against a retired
        strategy gets a clear error, never a silent fold."""
        _, client, _ = adaptive_live
        rng = np.random.default_rng(0)
        client.send_reports("demo", rng.integers(0, 8, size=50))
        client.query("demo", sync=True)
        client.advance_campaign("demo")

        with pytest.raises(ServiceError, match="stale round"):
            client.send_reports("demo", [1, 2, 3], round_id=1)
        with pytest.raises(ServiceError, match="unknown round"):
            client.send_reports("demo", [1, 2, 3], round_id=9)
        # tagged with the live round: accepted
        assert client.send_reports("demo", [1, 2, 3], round_id=2)["accepted"] == 3
        # nothing from the rejected batches leaked into the histogram
        assert client.query("demo", sync=True)["num_reports"] == 53

    def test_stale_round_rejected_on_binary_transport(self, adaptive_live):
        _, client, _ = adaptive_live
        rng = np.random.default_rng(0)
        client.send_reports("demo", rng.integers(0, 8, size=20))
        client.query("demo", sync=True)
        client.advance_campaign("demo")

        binary = ServiceClient(client.host, client.port, transport="binary")
        try:
            with pytest.raises(ServiceError, match="stale round"):
                binary.send_reports("demo", [1, 2], round_id=1)
            accepted = binary.send_reports("demo", [1, 2], round_id=2)
            assert accepted["accepted"] == 2
        finally:
            binary.close()

    def test_adaptive_campaigns_rejected_in_cluster_mode(self):
        service = CollectionService(cluster_workers=1, flush_interval=0.02)
        thread = ServiceThread(service)
        host, port = thread.start()
        client = ServiceClient(host, port)
        try:
            with pytest.raises(ServiceError, match="cluster"):
                client.create_campaign(
                    "demo",
                    workload="Histogram",
                    domain_size=4,
                    epsilon=1.0,
                    mechanism="Randomized Response",
                    adaptive={"rounds": 2},
                )
        finally:
            client.close()
            thread.stop()

    def test_round_tags_on_non_adaptive_campaigns_rejected(self, adaptive_live):
        _, client, _ = adaptive_live
        client.create_campaign(
            "plain",
            workload="Histogram",
            domain_size=4,
            epsilon=1.0,
            mechanism="Randomized Response",
        )
        with pytest.raises(ServiceError, match="not adaptive"):
            client.send_reports("plain", [1], round_id=1)

    def test_advance_refused_for_non_adaptive_and_unknown(self, adaptive_live):
        _, client, _ = adaptive_live
        client.create_campaign(
            "plain",
            workload="Histogram",
            domain_size=4,
            epsilon=1.0,
            mechanism="Randomized Response",
        )
        with pytest.raises(ServiceError, match="not adaptive"):
            client.advance_campaign("plain")
        with pytest.raises(ServiceError, match="404"):
            client.advance_campaign("ghost")

    def test_reporter_pins_its_round_and_refreshes_across_advance(
        self, adaptive_live
    ):
        _, client, _ = adaptive_live
        rng = np.random.default_rng(5)
        reporter = client.reporter("demo", batch_size=1000, rng=rng)
        assert reporter.round_id == 1
        reporter.report_many([1, 2, 3] * 20)
        reporter.flush_all()
        client.query("demo", sync=True)
        client.advance_campaign("demo")

        # the pinned round-1 reporter now randomizes against a retired
        # strategy; shipping must fail loudly, not fold silently
        reporter.report(4)
        with pytest.raises(ServiceError, match="stale round"):
            reporter.flush_all()

        # refresh drops the unshippable stale report and rotates the round
        assert reporter.refresh() == 2
        assert reporter.round_id == 2
        assert reporter.reports_dropped == 1
        assert reporter.pending == 0
        reporter.report_many([5, 6])
        reporter.flush_all()
        answer = client.query("demo", sync=True)
        assert answer["num_reports"] == 62
        assert answer["round"] == 2

    def test_crash_between_round_checkpoint_and_swap_recovers(
        self, adaptive_live
    ):
        """Satellite: the service dies after the round checkpoint but
        before the post-commit checkpoint lands; recovery replays into the
        correct round with bit-identical accumulators and strategy."""
        thread, client, checkpoint_dir = adaptive_live
        rng = np.random.default_rng(3)
        client.send_reports("demo", rng.integers(0, 8, size=250))
        before = client.query("demo", sync=True)

        # checkpoint=False skips the post-commit checkpoint: on disk the
        # campaign is still in round 1 (the advance's own round checkpoint),
        # in memory it is in round 2.
        report = client.advance_campaign("demo", checkpoint=False)
        strategy = client.strategy("demo")
        client.close()
        thread.stop(final_checkpoint=False)  # crash

        service = CollectionService(
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=3600.0,
            flush_interval=0.02,
        )
        thread = ServiceThread(service)
        host, port = thread.start()
        client = ServiceClient(host, port)
        try:
            assert client.healthz()["recovered"] is True
            recovered = client.query("demo", sync=True)
            assert recovered["round"] == 1
            assert recovered["num_reports"] == 250
            assert recovered["estimates"] == before["estimates"]

            replayed = client.advance_campaign("demo")
            assert replayed == report
            assert np.array_equal(
                client.strategy("demo").probabilities, strategy.probabilities
            )
        finally:
            client.close()
            thread.stop()
