"""Strategy store: keys, round trips, invalidation, corruption, pruning."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.reconstruction import reconstruction_operator
from repro.exceptions import StoreError
from repro.optimization import OptimizerConfig, optimize_strategy
from repro.store import (
    StrategyStore,
    config_fingerprint,
    gram_fingerprint,
    key_for,
)
from repro.workloads import histogram, prefix


CONFIG = OptimizerConfig(num_iterations=40, seed=0)


@pytest.fixture
def store(tmp_path) -> StrategyStore:
    return StrategyStore(tmp_path / "strategies")


@pytest.fixture(scope="module")
def result():
    return optimize_strategy(prefix(8), 1.0, CONFIG)


class TestKeys:
    def test_gram_fingerprint_matches_workload_and_matrix(self):
        assert gram_fingerprint(prefix(8)) == gram_fingerprint(prefix(8).gram())

    def test_gram_fingerprint_distinguishes_workloads(self):
        assert gram_fingerprint(prefix(8)) != gram_fingerprint(histogram(8))

    def test_config_fingerprint_sensitive_to_every_field(self):
        base = config_fingerprint(CONFIG)
        from dataclasses import replace

        assert base == config_fingerprint(OptimizerConfig(num_iterations=40, seed=0))
        assert base != config_fingerprint(replace(CONFIG, num_iterations=41))
        assert base != config_fingerprint(replace(CONFIG, seed=1))
        assert base != config_fingerprint(replace(CONFIG, step_size=0.1))
        assert base != config_fingerprint(
            replace(CONFIG, initial_strategy=np.full((4, 2), 0.25))
        )

    def test_config_fingerprint_extras_change_key(self):
        assert config_fingerprint(CONFIG) != config_fingerprint(CONFIG, restarts=4)
        assert config_fingerprint(CONFIG, restarts=4) == config_fingerprint(
            CONFIG, restarts=4
        )

    def test_entry_id_stable_across_processes(self):
        # Pure function of (gram, epsilon, config): no machine salt.
        a = key_for(prefix(8), 1.0, CONFIG).entry_id
        b = key_for(prefix(8).gram(), 1.0, CONFIG).entry_id
        assert a == b

    def test_epsilon_rounding(self):
        assert (
            key_for(prefix(8), 1.0 + 1e-14, CONFIG).entry_id
            == key_for(prefix(8), 1.0, CONFIG).entry_id
        )


class TestRoundTrip:
    def test_bit_identical_strategy_and_operator(self, store, result):
        key = key_for(prefix(8), 1.0, CONFIG)
        store.put(key, result, workload="Prefix", config=CONFIG)
        loaded = store.get(key)
        assert loaded is not None
        assert np.array_equal(
            loaded.strategy.probabilities, result.strategy.probabilities
        )
        assert loaded.strategy.epsilon == result.strategy.epsilon
        # The reconstruction operator is a deterministic function of the
        # strategy, so a bit-identical matrix reconstructs identically.
        assert np.array_equal(
            reconstruction_operator(loaded.strategy.probabilities),
            reconstruction_operator(result.strategy.probabilities),
        )

    def test_provenance_round_trip(self, store, result):
        key = key_for(prefix(8), 1.0, CONFIG)
        store.put(key, result, workload="Prefix", config=CONFIG)
        loaded = store.get(key)
        assert loaded.objective == result.objective
        assert loaded.iterations_run == result.iterations_run
        assert loaded.step_size == result.step_size
        assert np.array_equal(loaded.bounds, result.bounds)
        assert loaded.history == result.history

    def test_record_metadata(self, store, result):
        key = key_for(prefix(8), 1.0, CONFIG)
        record = store.put(key, result, workload="Prefix", config=CONFIG)
        assert record.entry_id == key.entry_id
        assert record.workload == "Prefix"
        assert record.domain_size == 8
        assert record.epsilon == 1.0
        assert record.objective == pytest.approx(result.objective)
        assert record.size_bytes > 0

    def test_inspect_provenance_includes_config(self, store, result):
        key = key_for(prefix(8), 1.0, CONFIG)
        store.put(key, result, workload="Prefix", config=CONFIG)
        provenance = store.provenance(key.entry_id)
        assert provenance["config"]["num_iterations"] == 40
        assert provenance["config"]["seed"] == 0
        assert provenance["library_version"]
        assert provenance["notes"] == {}

    def test_notes_round_trip(self, store, result):
        key = key_for(prefix(8), 1.0, CONFIG)
        store.put(
            key,
            result,
            config=CONFIG,
            notes={"warm_start_won": True, "warm_source_entry": "abc"},
        )
        provenance = store.provenance(key.entry_id)
        assert provenance["notes"]["warm_start_won"] is True
        assert provenance["notes"]["warm_source_entry"] == "abc"


class TestHitMissInvalidation:
    def test_miss_on_empty_store(self, store):
        assert store.get(key_for(prefix(8), 1.0, CONFIG)) is None
        assert len(store) == 0

    def test_hit_requires_exact_key(self, store, result):
        key = key_for(prefix(8), 1.0, CONFIG)
        store.put(key, result, config=CONFIG)
        assert store.get(key) is not None
        assert key in store

    def test_miss_on_gram_change(self, store, result):
        store.put(key_for(prefix(8), 1.0, CONFIG), result, config=CONFIG)
        assert store.get(key_for(histogram(8), 1.0, CONFIG)) is None

    def test_miss_on_epsilon_change(self, store, result):
        store.put(key_for(prefix(8), 1.0, CONFIG), result, config=CONFIG)
        assert store.get(key_for(prefix(8), 1.5, CONFIG)) is None

    def test_miss_on_config_change(self, store, result):
        from dataclasses import replace

        store.put(key_for(prefix(8), 1.0, CONFIG), result, config=CONFIG)
        changed = replace(CONFIG, num_iterations=41)
        assert store.get(key_for(prefix(8), 1.0, changed)) is None

    def test_miss_on_extras_change(self, store, result):
        store.put(
            key_for(prefix(8), 1.0, CONFIG, restarts=1), result, config=CONFIG
        )
        assert store.get(key_for(prefix(8), 1.0, CONFIG, restarts=4)) is None

    def test_put_epsilon_mismatch_rejected(self, store, result):
        with pytest.raises(StoreError):
            store.put(key_for(prefix(8), 2.0, CONFIG), result)

    def test_put_domain_mismatch_rejected(self, store, result):
        with pytest.raises(StoreError):
            store.put(key_for(prefix(16), 1.0, CONFIG), result)


class TestCorruption:
    def _stored_key(self, store, result):
        key = key_for(prefix(8), 1.0, CONFIG)
        store.put(key, result, config=CONFIG)
        return key

    def test_truncated_payload_rejected_and_evicted(self, store, result):
        key = self._stored_key(store, result)
        path = store.entry_path(key.entry_id)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(StoreError, match="checksum"):
            store.load(key.entry_id)
        # get() degrades to a miss and self-heals.
        assert store.get(key) is None
        assert len(store) == 0
        assert not path.exists()

    def test_bitflip_rejected(self, store, result):
        key = self._stored_key(store, result)
        path = store.entry_path(key.entry_id)
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        assert store.get(key) is None

    def test_missing_payload_rejected(self, store, result):
        key = self._stored_key(store, result)
        store.entry_path(key.entry_id).unlink()
        with pytest.raises(StoreError, match="missing"):
            store.load(key.entry_id)
        assert store.get(key) is None

    def test_tampered_strategy_cannot_violate_privacy(self, store, result):
        # Rewrite the payload with a privacy-violating matrix and a forged
        # checksum: loading must still fail (StrategyMatrix re-validates).
        key = self._stored_key(store, result)
        path = store.entry_path(key.entry_id)
        bad = np.zeros_like(result.strategy.probabilities)
        bad[0, :] = 1.0
        bad[0, 0] = 0.0
        bad[1, 0] = 1.0  # ratio inf between types 0 and 1 on outputs 0/1
        with np.load(path, allow_pickle=False) as archive:
            fields = {name: archive[name] for name in archive.files}
        fields["probabilities"] = bad
        np.savez_compressed(path, **fields)
        entries = store._read_index()
        entries[key.entry_id]["payload_sha256"] = __import__(
            "repro.store.store", fromlist=["_sha256_file"]
        )._sha256_file(path)
        store._write_index(entries)
        with pytest.raises(StoreError, match="corrupt"):
            store.load(key.entry_id)
        assert store.get(key) is None

    def test_unreadable_index_raises(self, store, result):
        self._stored_key(store, result)
        store.index_path.write_text("{not json")
        with pytest.raises(StoreError, match="index"):
            store.records()

    def test_wrong_index_version_raises(self, store, result):
        self._stored_key(store, result)
        document = json.loads(store.index_path.read_text())
        document["store_version"] = 999
        store.index_path.write_text(json.dumps(document))
        with pytest.raises(StoreError, match="version"):
            store.records()


class TestLookupsAndPruning:
    def test_best_for_picks_lowest_objective(self, store, result):
        from dataclasses import replace

        other_config = replace(CONFIG, seed=1)
        other = optimize_strategy(prefix(8), 1.0, other_config)
        store.put(key_for(prefix(8), 1.0, CONFIG), result, config=CONFIG)
        store.put(
            key_for(prefix(8), 1.0, other_config), other, config=other_config
        )
        best = store.best_for(prefix(8), 1.0)
        assert best.objective == min(result.objective, other.objective)

    def test_best_for_none_for_unknown_workload(self, store, result):
        store.put(key_for(prefix(8), 1.0, CONFIG), result, config=CONFIG)
        assert store.best_for(histogram(8), 1.0) is None

    def test_nearest_prefers_closest_epsilon(self, store):
        for epsilon in (0.5, 2.0):
            run = optimize_strategy(prefix(8), epsilon, CONFIG)
            store.put(key_for(prefix(8), epsilon, CONFIG), run, config=CONFIG)
        near = store.nearest(prefix(8), 1.8)
        assert near is not None and near.epsilon == 2.0

    def test_nearest_respects_log_ratio_cap(self, store, result):
        store.put(key_for(prefix(8), 1.0, CONFIG), result, config=CONFIG)
        assert store.nearest(prefix(8), 100.0, max_log_ratio=1.0) is None

    def test_prune_lru_order(self, store):
        keys = []
        for epsilon in (0.5, 1.0, 2.0):
            run = optimize_strategy(prefix(8), epsilon, CONFIG)
            keys.append(key_for(prefix(8), epsilon, CONFIG))
            store.put(keys[-1], run, config=CONFIG)
        # Touch the oldest entry so it becomes the most recently used.
        assert store.get(keys[0]) is not None
        evicted = store.prune(max_entries=1)
        assert len(evicted) == 2
        assert store.get(keys[0]) is not None
        assert store.get(keys[1]) is None and store.get(keys[2]) is None

    def test_prune_byte_budget(self, store, result):
        store.put(key_for(prefix(8), 1.0, CONFIG), result, config=CONFIG)
        assert store.prune(max_bytes=0) != []
        assert len(store) == 0

    def test_prune_noop_without_budgets(self, store, result):
        store.put(key_for(prefix(8), 1.0, CONFIG), result, config=CONFIG)
        assert store.prune() == []
        assert len(store) == 1

    def test_clear(self, store, result):
        store.put(key_for(prefix(8), 1.0, CONFIG), result, config=CONFIG)
        assert store.clear() == 1
        assert len(store) == 0

    def test_atomic_overwrite(self, store, result):
        key = key_for(prefix(8), 1.0, CONFIG)
        store.put(key, result, config=CONFIG)
        store.put(key, result, config=CONFIG)
        assert len(store) == 1
        assert store.get(key) is not None
