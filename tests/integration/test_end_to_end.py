"""End-to-end integration tests: optimize -> audit -> simulate -> post-process.

These walk the full pipeline a real deployment would run, for each of the
paper's workloads, and check the pieces agree with each other.
"""

import numpy as np
import pytest

from repro.analysis import total_variance
from repro.data import hepth_like
from repro.optimization import OptimizedMechanism, OptimizerConfig
from repro.postprocess import wnnls_from_data_estimate
from repro.protocol import audit_strategy, run_protocol
from repro.workloads import PAPER_WORKLOADS, by_name

DOMAIN_SIZE = 16
EPSILON = 1.0


@pytest.fixture(scope="module")
def mechanism() -> OptimizedMechanism:
    return OptimizedMechanism(OptimizerConfig(num_iterations=200, seed=0))


@pytest.mark.parametrize("name", PAPER_WORKLOADS)
class TestFullPipeline:
    def test_pipeline(self, name, mechanism):
        workload = by_name(name, DOMAIN_SIZE)
        rng = np.random.default_rng(0)

        # 1. Optimize and audit the strategy.
        strategy = mechanism.strategy_for(workload, EPSILON)
        report = audit_strategy(strategy)
        assert report.satisfied, f"{name}: optimized strategy violates LDP"

        # 2. Run the protocol on a realistic dataset.
        dataset = hepth_like(DOMAIN_SIZE, num_users=2_000)
        result = run_protocol(workload, strategy, dataset.data_vector, rng)
        assert result.num_users == 2_000

        # 3. The realized squared error is within sane bounds of the
        #    analytic prediction (single run: allow a wide band).
        predicted = total_variance(
            strategy.probabilities, workload.gram(), dataset.data_vector
        )
        truth_delta = result.data_vector_estimate - dataset.data_vector
        realized = workload.error_quadratic(truth_delta)
        assert realized < predicted * 10

        # 4. WNNLS keeps answers close while restoring consistency.
        consistent = wnnls_from_data_estimate(
            workload, result.data_vector_estimate
        )
        assert (consistent >= 0).all()
        error_after = workload.error_quadratic(consistent - dataset.data_vector)
        assert error_after <= realized * 1.2


class TestHeadlineClaim:
    """The paper's abstract: the optimized mechanism outperforms every
    competitor, even on the workloads those competitors were designed for."""

    def test_beats_designed_for_baselines(self, mechanism):
        from repro.mechanisms import paper_baselines

        matchups = {
            "Histogram": "Randomized Response",
            "Prefix": "Hierarchical",
            "AllRange": "Hierarchical",
            "3-Way Marginals": "Fourier",
        }
        baselines = {m.name: m for m in paper_baselines()}
        for workload_name, baseline_name in matchups.items():
            workload = by_name(workload_name, DOMAIN_SIZE)
            ours = mechanism.sample_complexity(workload, EPSILON)
            theirs = baselines[baseline_name].sample_complexity(workload, EPSILON)
            assert ours < theirs, f"lost to {baseline_name} on {workload_name}"

    def test_average_variance_statistically_matches_protocol(self, mechanism):
        # Simulated mean squared error ~= Theorem 3.4 prediction.
        workload = by_name("Prefix", 8)
        strategy = mechanism.strategy_for(workload, EPSILON)
        operator = mechanism.reconstruction_for(workload, EPSILON)
        x = np.full(8, 50.0)
        predicted = total_variance(strategy.probabilities, workload.gram(), x)
        rng = np.random.default_rng(1)
        errors = []
        for _ in range(300):
            y = strategy.sample_histogram(x, rng)
            delta = operator @ y - x
            errors.append(workload.error_quadratic(delta))
        assert np.isclose(np.mean(errors), predicted, rtol=0.2)
