"""The ``repro strategy`` CLI family end to end (build/list/inspect/prune)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.store import StrategyStore


def build_args(store, **overrides):
    options = {
        "workload": "Prefix",
        "domain": "8",
        "epsilon": "1.0",
        "iterations": "40",
        "restarts": "2",
        "seed": "0",
    }
    options.update(overrides)
    argv = ["strategy", "build", "--store", str(store)]
    for name, value in options.items():
        argv += [f"--{name}", value]
    return argv


class TestBuild:
    def test_cold_build_then_store_hit(self, tmp_path, capsys):
        store = tmp_path / "strategies"
        assert main(build_args(store)) == 0
        first = capsys.readouterr().out
        assert "store MISS" in first and "restart objectives" in first

        # The acceptance criterion: the identical build is a pure store
        # hit — no PGD iterations run.
        assert main(build_args(store)) == 0
        second = capsys.readouterr().out
        assert "store HIT" in second
        assert "no PGD iterations run" in second

    def test_changed_config_misses(self, tmp_path, capsys):
        store = tmp_path / "strategies"
        assert main(build_args(store)) == 0
        capsys.readouterr()
        assert main(build_args(store, iterations="41")) == 0
        assert "store MISS" in capsys.readouterr().out

    def test_build_persists_entry(self, tmp_path, capsys):
        store = tmp_path / "strategies"
        main(build_args(store))
        records = StrategyStore(store).records()
        assert len(records) == 1
        assert records[0].workload == "Prefix"
        assert records[0].domain_size == 8


class TestList:
    def test_empty_store(self, tmp_path, capsys):
        assert main(["strategy", "list", "--store", str(tmp_path / "s")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_lists_entries_with_metadata(self, tmp_path, capsys):
        store = tmp_path / "strategies"
        main(build_args(store))
        main(build_args(store, workload="Histogram", epsilon="0.5"))
        capsys.readouterr()
        assert main(["strategy", "list", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Prefix" in out and "Histogram" in out
        assert "2 entries" in out


class TestInspect:
    def test_provenance_json_by_prefix(self, tmp_path, capsys):
        store = tmp_path / "strategies"
        main(build_args(store))
        entry_id = StrategyStore(store).records()[0].entry_id
        capsys.readouterr()
        assert main(
            ["strategy", "inspect", entry_id[:8], "--store", str(store)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["record"]["entry_id"] == entry_id
        assert payload["config"]["num_iterations"] == 40
        # The CLI build records the objective trajectory as provenance.
        assert payload["objective_trajectory_length"] > 0

    def test_unknown_prefix_exits_nonzero(self, tmp_path, capsys):
        store = tmp_path / "strategies"
        main(build_args(store))
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["strategy", "inspect", "zzzz", "--store", str(store)])


class TestPrune:
    def test_prune_to_keep_budget(self, tmp_path, capsys):
        store = tmp_path / "strategies"
        main(build_args(store))
        main(build_args(store, epsilon="2.0"))
        capsys.readouterr()
        assert main(
            ["strategy", "prune", "--keep", "1", "--store", str(store)]
        ) == 0
        out = capsys.readouterr().out
        assert "pruned 1 of 2" in out
        assert len(StrategyStore(store)) == 1


class TestProtocolRunWithStore:
    def test_optimized_collection_through_store(self, tmp_path, capsys):
        store = tmp_path / "strategies"
        argv = [
            "protocol", "run",
            "--workload", "Prefix", "--domain", "8",
            "--users", "2000", "--mechanism", "Optimized",
            "--iterations", "40", "--shards", "2",
            "--store", str(store),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # The strategy was persisted; a second campaign reuses it.
        assert len(StrategyStore(store)) == 1
        assert main(argv) == 0
        assert "collected 2,000 reports" in capsys.readouterr().out

    def test_usage_line_for_bare_strategy_command(self, capsys):
        assert main(["strategy"]) == 2
        assert "usage: repro strategy" in capsys.readouterr().out
