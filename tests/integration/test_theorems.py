"""Property tests of the paper's theorems on randomly generated instances."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    average_case_variance,
    per_user_variances,
    strategy_objective,
    strategy_objective_lower_bound,
    worst_case_variance,
)
from repro.optimization import initial_bounds, project_columns
from repro.workloads import histogram, prefix, random_workload


def random_strategy(rows, cols, epsilon, seed):
    raw = np.random.default_rng(seed).random((rows, cols))
    return project_columns(raw, initial_bounds(rows, epsilon), epsilon).matrix


class TestTheorem51:
    """L_avg <= L_worst <= e^eps (L_avg + N/n ||W||_F^2)."""

    @settings(max_examples=30)
    @given(
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.2, max_value=3.0),
        st.integers(min_value=0, max_value=1000),
    )
    def test_bounds_random_strategies(self, cols, epsilon, seed):
        workload = prefix(cols)
        strategy = random_strategy(4 * cols, cols, epsilon, seed)
        num_users = 10.0
        average = average_case_variance(strategy, workload.gram(), num_users)
        worst = worst_case_variance(strategy, workload.gram(), num_users)
        assert average <= worst + 1e-9
        upper = np.exp(epsilon) * (
            average + num_users / cols * workload.frobenius_norm_squared()
        )
        assert worst <= upper + 1e-6

    @settings(max_examples=15)
    @given(st.integers(min_value=0, max_value=500))
    def test_bounds_random_workloads(self, seed):
        workload = random_workload(6, 5, seed=seed)
        strategy = random_strategy(20, 5, 1.0, seed + 1)
        average = average_case_variance(strategy, workload.gram())
        worst = worst_case_variance(strategy, workload.gram())
        assert average <= worst + 1e-9
        upper = np.e * (average + workload.frobenius_norm_squared() / 5)
        assert worst <= upper + 1e-6

    def test_rr_equality_case(self):
        # Example 3.7: worst == average for RR on Histogram.
        from repro.mechanisms import randomized_response

        strategy = randomized_response(8, 1.0).probabilities
        assert np.isclose(
            worst_case_variance(strategy, np.eye(8)),
            average_case_variance(strategy, np.eye(8)),
        )


class TestTheorem56:
    """The SVD bound holds for every feasible strategy."""

    @settings(max_examples=30)
    @given(
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.2, max_value=3.0),
        st.integers(min_value=0, max_value=1000),
    )
    def test_random_instances(self, cols, epsilon, seed):
        workload = random_workload(2 * cols, cols, seed=seed)
        strategy = random_strategy(4 * cols, cols, epsilon, seed + 1)
        # Theorem 5.6 bounds L(Q) over strategies that can *support* the
        # workload (W = W Q^+ Q).  The column projection can collapse a
        # random draw to a rank-deficient Q — e.g. every column equal at
        # small epsilon — where L(Q) is really +inf but the pinv-based
        # objective silently drops the unsupported directions.
        assume(
            np.allclose(
                workload.matrix,
                workload.matrix @ np.linalg.pinv(strategy) @ strategy,
            )
        )
        value = strategy_objective(strategy, workload.gram())
        bound = strategy_objective_lower_bound(workload, epsilon)
        assert value >= bound * (1 - 1e-9)


class TestVarianceNonNegativity:
    @settings(max_examples=30)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    def test_per_user_variances_nonnegative(self, cols, seed):
        workload = random_workload(cols + 2, cols, seed=seed)
        strategy = random_strategy(3 * cols, cols, 1.0, seed + 1)
        t = per_user_variances(strategy, workload.gram())
        assert t.min() >= -1e-8


class TestSampleComplexityMonotonicity:
    def test_decreasing_in_epsilon_for_optimized(self):
        from repro.optimization import OptimizedMechanism, OptimizerConfig

        mechanism = OptimizedMechanism(OptimizerConfig(num_iterations=120, seed=0))
        workload = histogram(8)
        values = [
            mechanism.sample_complexity(workload, epsilon)
            for epsilon in (0.5, 1.0, 2.0, 4.0)
        ]
        assert all(a >= b * 0.999 for a, b in zip(values, values[1:]))
