"""The service CLI family: ``repro report`` / ``repro query`` / ``--version``
against an in-process server (``repro serve`` itself is exercised as a real
subprocess by ``scripts/service_smoke.py`` and CI's service-smoke job)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.service import CollectionService, ServiceThread


@pytest.fixture
def live_server():
    service = CollectionService(flush_interval=0.02)
    service.manager.create(
        "cli-demo",
        workload="Histogram",
        domain_size=8,
        epsilon=1.0,
        mechanism="Randomized Response",
    )
    thread = ServiceThread(service)
    host, port = thread.start()
    try:
        yield host, port
    finally:
        thread.stop()


class TestVersionFlag:
    def test_version_prints_library_version(self, capsys):
        from repro._version import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestReportAndQuery:
    def test_report_values_then_query(self, live_server, capsys):
        host, port = live_server
        code = main(
            [
                "report",
                "--host", host,
                "--port", str(port),
                "--campaign", "cli-demo",
                "--values", "0,1,2,3,3",
                "--seed", "0",
            ]
        )
        assert code == 0
        assert "sent 5" in capsys.readouterr().out

        code = main(
            [
                "query",
                "--host", host,
                "--port", str(port),
                "--campaign", "cli-demo",
                "--sync",
                "--limit", "0",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "5 reports" in output
        assert "interval" in output

    def test_report_simulate(self, live_server, capsys):
        host, port = live_server
        code = main(
            [
                "report",
                "--host", host,
                "--port", str(port),
                "--campaign", "cli-demo",
                "--simulate", "2000",
                "--seed", "1",
            ]
        )
        assert code == 0
        assert "2,000 locally-randomized reports" in capsys.readouterr().out

    def test_report_requires_exactly_one_source(self, live_server, capsys):
        host, port = live_server
        argv = ["report", "--host", host, "--port", str(port),
                "--campaign", "cli-demo"]
        assert main(argv) == 2
        assert main(argv + ["--values", "1", "--simulate", "5"]) == 2

    def test_query_unknown_campaign_raises(self, live_server):
        from repro.exceptions import ServiceError

        host, port = live_server
        with pytest.raises(ServiceError, match="unknown campaign"):
            main(
                [
                    "query",
                    "--host", host,
                    "--port", str(port),
                    "--campaign", "ghost",
                ]
            )

    def test_report_binary_transport(self, live_server, capsys):
        host, port = live_server
        code = main(
            [
                "report",
                "--host", host,
                "--port", str(port),
                "--campaign", "cli-demo",
                "--values", "0,1,2",
                "--transport", "binary",
            ]
        )
        assert code == 0
        assert "sent 3" in capsys.readouterr().out


class TestServeFlags:
    def test_serve_parser_accepts_cluster_flags(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["serve", "--workers", "3", "--transport", "binary", "--port", "0"]
        )
        assert arguments.workers == 3
        assert arguments.transport == "binary"

    def test_serve_parser_rejects_unknown_transport(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--transport", "tcp"])
        assert "invalid choice" in capsys.readouterr().err

    def test_serve_parser_accepts_adaptive_flags(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["serve", "--adaptive", "3", "--adaptive-groups", "2",
             "--adaptive-seed", "7", "--port", "0"]
        )
        assert arguments.adaptive == 3
        assert arguments.adaptive_groups == 2
        assert arguments.adaptive_seed == 7

    def test_serve_refuses_adaptive_with_cluster_workers(self, capsys):
        code = main(["serve", "--adaptive", "2", "--workers", "2", "--port", "0"])
        assert code == 2
        assert "cluster mode" in capsys.readouterr().err


class TestCampaignAdvanceCli:
    @pytest.fixture
    def adaptive_server(self):
        from repro.service import AdaptivePlan

        service = CollectionService(flush_interval=0.02)
        service.manager.create(
            "cli-adaptive",
            workload="Prefix",
            domain_size=8,
            epsilon=2.0,
            mechanism="Randomized Response",
            adaptive=AdaptivePlan(
                num_rounds=2, num_groups=2, iterations=15, seed=0
            ),
        )
        thread = ServiceThread(service)
        host, port = thread.start()
        try:
            yield host, port
        finally:
            thread.stop()

    def test_advance_prints_the_round_report(self, adaptive_server, capsys):
        host, port = adaptive_server
        assert main(
            [
                "report",
                "--host", host,
                "--port", str(port),
                "--campaign", "cli-adaptive",
                "--simulate", "300",
                "--seed", "0",
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "campaign", "advance",
                "--host", host,
                "--port", str(port),
                "--campaign", "cli-adaptive",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "advanced to round 2" in output
        assert "selected sub-workload" in output

    def test_advance_on_non_adaptive_campaign_errors(self, live_server):
        from repro.exceptions import ServiceError

        host, port = live_server
        with pytest.raises(ServiceError, match="not adaptive"):
            main(
                [
                    "campaign", "advance",
                    "--host", host,
                    "--port", str(port),
                    "--campaign", "cli-demo",
                ]
            )

    def test_campaign_without_subcommand_is_usage_error(self, capsys):
        assert main(["campaign"]) == 2
