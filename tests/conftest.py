"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_gram() -> np.ndarray:
    """A fixed 5x5 PSD Gram matrix (from the Prefix workload)."""
    from repro.workloads import prefix

    return prefix(5).gram()


@pytest.fixture
def feasible_strategy() -> np.ndarray:
    """A random feasible 1-LDP strategy matrix (projected uniform)."""
    from repro.optimization import initial_bounds, project_columns

    generator = np.random.default_rng(7)
    raw = generator.random((20, 5))
    bounds = initial_bounds(20, 1.0)
    return project_columns(raw, bounds, 1.0).matrix
