"""Tests for the DPBench-like dataset surrogates."""

import numpy as np
import pytest

from repro.data import (
    DPBENCH_NAMES,
    Dataset,
    by_name,
    dpbench_like,
    hepth_like,
    medcost_like,
    nettrace_like,
)
from repro.exceptions import DataError


class TestDatasets:
    def test_all_three_present(self):
        datasets = dpbench_like(128)
        assert [d.name for d in datasets] == list(DPBENCH_NAMES)

    @pytest.mark.parametrize("builder", [hepth_like, medcost_like, nettrace_like])
    def test_sizes(self, builder):
        dataset = builder(64, num_users=5_000)
        assert dataset.data_vector.shape == (64,)
        assert dataset.num_users == 5_000

    def test_distribution_normalized(self):
        dataset = hepth_like(32, 1_000)
        distribution = dataset.distribution()
        assert np.isclose(distribution.sum(), 1.0)
        assert (distribution >= 0).all()

    def test_empty_dataset_rejected(self):
        dataset = Dataset("empty", np.zeros(4), "nothing")
        with pytest.raises(DataError):
            dataset.distribution()

    def test_by_name(self):
        assert by_name("MEDCOST", 64).name == "MEDCOST"

    def test_by_name_unknown(self):
        with pytest.raises(DataError):
            by_name("ADULT", 64)

    def test_shapes_differ_across_datasets(self):
        # The surrogates should be genuinely different distributions.
        datasets = dpbench_like(256, num_users=200_000)
        distributions = [d.distribution() for d in datasets]
        for i in range(3):
            for j in range(i + 1, 3):
                overlap = np.minimum(distributions[i], distributions[j]).sum()
                assert overlap < 0.9

    def test_nettrace_sparsest(self):
        datasets = {d.name: d for d in dpbench_like(256, num_users=100_000)}
        occupancy = {
            name: (d.data_vector > 0).mean() for name, d in datasets.items()
        }
        assert occupancy["NETTRACE"] <= occupancy["MEDCOST"]
