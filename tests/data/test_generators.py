"""Tests for synthetic data generators."""

import numpy as np
import pytest

from repro.data import (
    bimodal_data,
    geometric_data,
    sparse_spike_data,
    uniform_data,
    zipf_data,
)
from repro.exceptions import DataError


@pytest.mark.parametrize(
    "generator",
    [uniform_data, zipf_data, geometric_data, bimodal_data, sparse_spike_data],
)
class TestCommonProperties:
    def test_total_count(self, generator):
        data = generator(64, 10_000, seed=0)
        assert data.sum() == 10_000

    def test_nonnegative_integers(self, generator):
        data = generator(32, 5_000, seed=1)
        assert (data >= 0).all()
        assert np.allclose(data, np.round(data))

    def test_deterministic_with_seed(self, generator):
        assert np.array_equal(generator(16, 1_000, seed=9), generator(16, 1_000, seed=9))


class TestShapes:
    def test_zipf_head_heavy(self):
        data = zipf_data(100, 100_000, exponent=1.5, seed=0)
        assert data[0] > data[50]

    def test_zipf_rejects_bad_exponent(self):
        with pytest.raises(DataError):
            zipf_data(10, 100, exponent=0.0)

    def test_geometric_decays(self):
        data = geometric_data(50, 100_000, decay=0.2, seed=0)
        assert data[0] > data[20] > data[45] - 5

    def test_geometric_rejects_bad_decay(self):
        with pytest.raises(DataError):
            geometric_data(10, 100, decay=1.5)

    def test_sparse_spikes_concentrated(self):
        data = sparse_spike_data(256, 100_000, num_spikes=4, seed=0)
        top4 = np.sort(data)[-4:].sum()
        assert top4 > 0.8 * data.sum()

    def test_sparse_rejects_bad_spikes(self):
        with pytest.raises(DataError):
            sparse_spike_data(10, 100, num_spikes=11)

    def test_bimodal_has_two_bumps(self):
        data = bimodal_data(200, 500_000, seed=0)
        first_peak = data[30:70].sum()
        valley = data[85:115].sum()
        second_peak = data[120:160].sum()
        assert first_peak > valley
        assert second_peak > valley
