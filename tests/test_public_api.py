"""Tests for the package's public API surface."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        # Single-sourced from repro._version (the store's provenance records
        # and the CLI's --version read the same constant).
        from repro._version import __version__

        assert repro.__version__ == __version__
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(part.isdigit() for part in parts)

    def test_store_provenance_uses_same_version(self):
        from repro.store.store import _library_version

        assert _library_version() == repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_exception_hierarchy(self):
        for name in (
            "DomainError",
            "WorkloadError",
            "PrivacyViolationError",
            "StochasticityError",
            "FactorizationError",
            "OptimizationError",
            "ProtocolError",
            "DataError",
            "StoreError",
            "ServiceError",
        ):
            exception = getattr(repro, name)
            assert issubclass(exception, repro.ReproError)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.analysis",
            "repro.data",
            "repro.domains",
            "repro.experiments",
            "repro.linalg",
            "repro.mechanisms",
            "repro.optimization",
            "repro.postprocess",
            "repro.protocol",
            "repro.service",
            "repro.store",
            "repro.workloads",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        loaded = importlib.import_module(module)
        for name in getattr(loaded, "__all__", []):
            assert hasattr(loaded, name), f"{module}.{name}"

    def test_docstring_quickstart_runs(self):
        import numpy as np

        from repro import OptimizedMechanism, OptimizerConfig, workloads
        from repro.protocol import run_protocol

        w = workloads.prefix(8)
        mech = OptimizedMechanism(OptimizerConfig(num_iterations=30, seed=0))
        strategy = mech.strategy_for(w, epsilon=1.0)
        x = np.full(8, 10.0)
        result = run_protocol(w, strategy, x, rng=np.random.default_rng(0))
        assert result.workload_estimates.shape == (8,)
