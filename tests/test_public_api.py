"""Tests for the package's public API surface."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_exception_hierarchy(self):
        for name in (
            "DomainError",
            "WorkloadError",
            "PrivacyViolationError",
            "StochasticityError",
            "FactorizationError",
            "OptimizationError",
            "ProtocolError",
            "DataError",
        ):
            exception = getattr(repro, name)
            assert issubclass(exception, repro.ReproError)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.analysis",
            "repro.data",
            "repro.domains",
            "repro.experiments",
            "repro.linalg",
            "repro.mechanisms",
            "repro.optimization",
            "repro.postprocess",
            "repro.protocol",
            "repro.workloads",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        loaded = importlib.import_module(module)
        for name in getattr(loaded, "__all__", []):
            assert hasattr(loaded, name), f"{module}.{name}"

    def test_docstring_quickstart_runs(self):
        import numpy as np

        from repro import OptimizedMechanism, OptimizerConfig, workloads
        from repro.protocol import run_protocol

        w = workloads.prefix(8)
        mech = OptimizedMechanism(OptimizerConfig(num_iterations=30, seed=0))
        strategy = mech.strategy_for(w, epsilon=1.0)
        x = np.full(8, 10.0)
        result = run_protocol(w, strategy, x, rng=np.random.default_rng(0))
        assert result.workload_estimates.shape == (8,)
