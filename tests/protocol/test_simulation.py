"""Tests for the end-to-end protocol simulation."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.mechanisms import randomized_response
from repro.protocol import expand_users, run_protocol
from repro.workloads import histogram, prefix


class TestExpandUsers:
    def test_expansion(self):
        users = expand_users(np.array([2, 0, 1]))
        assert np.array_equal(users, [0, 0, 2])

    def test_rejects_negative_counts(self):
        with pytest.raises(ProtocolError):
            expand_users(np.array([1, -1]))


class TestRunProtocol:
    def test_fast_path_shapes(self, rng):
        workload = prefix(4)
        strategy = randomized_response(4, 1.0)
        result = run_protocol(workload, strategy, np.array([5.0, 5.0, 5.0, 5.0]), rng)
        assert result.workload_estimates.shape == (4,)
        assert result.data_vector_estimate.shape == (4,)
        assert result.response_vector.shape == (4,)
        assert result.num_users == 20

    def test_slow_path_matches_message_flow(self, rng):
        workload = histogram(3)
        strategy = randomized_response(3, 1.0)
        x = np.array([10.0, 0.0, 5.0])
        result = run_protocol(workload, strategy, x, rng, fast=False)
        assert result.num_users == 15
        assert result.response_vector.sum() == 15

    def test_unbiasedness_statistical(self, rng):
        workload = prefix(4)
        strategy = randomized_response(4, 1.0)
        x = np.array([50.0, 25.0, 15.0, 10.0])
        truth = workload.matvec(x)
        estimates = np.mean(
            [
                run_protocol(workload, strategy, x, rng).workload_estimates
                for _ in range(300)
            ],
            axis=0,
        )
        assert np.allclose(estimates, truth, rtol=0.1, atol=4.0)

    def test_fast_and_slow_same_distribution(self):
        # Same seed won't give identical draws, but moments should agree.
        workload = histogram(3)
        strategy = randomized_response(3, 1.0)
        x = np.array([40.0, 40.0, 20.0])
        fast_rng, slow_rng = np.random.default_rng(1), np.random.default_rng(2)
        fast = np.mean(
            [
                run_protocol(workload, strategy, x, fast_rng).workload_estimates
                for _ in range(300)
            ],
            axis=0,
        )
        slow = np.mean(
            [
                run_protocol(workload, strategy, x, slow_rng, fast=False).workload_estimates
                for _ in range(300)
            ],
            axis=0,
        )
        assert np.allclose(fast, slow, atol=4.0)
