"""Tests for privacy audits."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.mechanisms import (
    StrategyMatrix,
    hadamard_response,
    hierarchical,
    randomized_response,
)
from repro.protocol import audit_strategy, empirical_ratio_audit


class TestExactAudit:
    def test_randomized_response_tight(self):
        report = audit_strategy(randomized_response(5, 1.0))
        assert report.satisfied
        assert np.isclose(report.epsilon_realized, 1.0)
        assert np.isclose(report.slack, 0.0, atol=1e-9)

    def test_mixture_reports_slack(self):
        # A mixture never exceeds the component ratio; realized <= claimed.
        report = audit_strategy(hierarchical(8, 1.5))
        assert report.satisfied
        assert report.epsilon_realized <= 1.5 + 1e-9

    def test_violation_detected(self):
        matrix = np.array([[0.9, 0.1], [0.1, 0.9]])
        rogue = StrategyMatrix(matrix, 1.0, validate=False)
        report = audit_strategy(rogue)
        assert not report.satisfied
        assert report.epsilon_realized > 1.0

    def test_worst_output_identified(self):
        # Build a strategy where row 1 has the largest ratio.
        matrix = np.array([[0.5, 0.5], [0.3, 0.2], [0.2, 0.3]])
        strategy = StrategyMatrix(matrix, 1.0)
        report = audit_strategy(strategy)
        assert report.worst_output in (1, 2)


class TestEmpiricalAudit:
    def test_within_budget_for_honest_mechanism(self, rng):
        strategy = randomized_response(4, 1.0)
        ratio = empirical_ratio_audit(strategy, 0, 1, num_samples=100_000, rng=rng)
        assert ratio <= np.exp(1.0) * 1.1

    def test_detects_blatant_violation(self, rng):
        matrix = np.array([[0.99, 0.01], [0.01, 0.99]])
        rogue = StrategyMatrix(matrix, 1.0, validate=False)
        ratio = empirical_ratio_audit(rogue, 0, 1, num_samples=100_000, rng=rng)
        assert ratio > np.exp(1.0) * 2

    def test_rejects_bad_types(self, rng):
        strategy = hadamard_response(4, 1.0)
        with pytest.raises(ProtocolError):
            empirical_ratio_audit(strategy, 0, 7, rng=rng)
