"""Private worst-approximated selection: partitioning, scoring, and the
exponential mechanism's distribution checked against its analytic form."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.protocol import (
    partition_workload,
    group_scores,
    selection_probabilities,
    worst_approximated,
    boosted_workload,
)
from repro.workloads import histogram, prefix


class TestPartitionWorkload:
    def test_partition_covers_the_workload_contiguously(self):
        groups = partition_workload(prefix(8), 3)
        assert [g.index for g in groups] == [0, 1, 2]
        assert groups[0].start == 0
        assert groups[-1].stop == 8
        for left, right in zip(groups, groups[1:]):
            assert left.stop == right.start
        assert sum(g.num_queries for g in groups) == 8

    def test_more_groups_than_queries_clamps(self):
        groups = partition_workload(histogram(3), 10)
        assert len(groups) == 3
        assert all(g.num_queries == 1 for g in groups)

    def test_rejects_bad_group_count(self):
        with pytest.raises(ProtocolError):
            partition_workload(histogram(4), 0)


class TestGroupScores:
    def test_scores_are_per_block_rms(self):
        groups = partition_workload(histogram(4), 2)
        errors = np.array([3.0, 4.0, 0.0, 2.0])
        scores = group_scores(groups, errors)
        assert scores[0] == pytest.approx(np.sqrt((9 + 16) / 2))
        assert scores[1] == pytest.approx(np.sqrt((0 + 4) / 2))

    def test_rejects_length_mismatch(self):
        groups = partition_workload(histogram(4), 2)
        with pytest.raises(ProtocolError):
            group_scores(groups, np.ones(3))


class TestSelectionProbabilities:
    def test_equal_scores_give_uniform(self):
        probabilities = selection_probabilities([5.0, 5.0, 5.0, 5.0], epsilon=1.0)
        assert np.allclose(probabilities, 0.25)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_all_zero_scores_give_uniform(self):
        assert np.allclose(
            selection_probabilities([0.0, 0.0], epsilon=2.0), [0.5, 0.5]
        )

    def test_matches_analytic_exponential_mechanism(self):
        # P[g] ∝ exp(0.5 · ε · score / sensitivity)
        scores = np.array([0.0, 1.0, 2.5])
        epsilon, sensitivity = 1.5, 2.0
        weights = np.exp(0.5 * epsilon * scores / sensitivity)
        expected = weights / weights.sum()
        actual = selection_probabilities(
            scores, epsilon=epsilon, sensitivity=sensitivity
        )
        assert np.allclose(actual, expected, rtol=1e-12)

    def test_huge_scores_do_not_overflow(self):
        probabilities = selection_probabilities([0.0, 1e6], epsilon=10.0)
        assert np.all(np.isfinite(probabilities))
        assert probabilities[1] == pytest.approx(1.0)

    def test_rejects_invalid_input(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            selection_probabilities([], epsilon=1.0)
        with pytest.raises(ProtocolError, match="finite"):
            selection_probabilities([np.inf], epsilon=1.0)
        with pytest.raises(ProtocolError, match="epsilon"):
            selection_probabilities([1.0], epsilon=0.0)
        with pytest.raises(ProtocolError, match="sensitivity"):
            selection_probabilities([1.0], epsilon=1.0, sensitivity=-1.0)


class TestWorstApproximated:
    def test_empirical_frequencies_match_analytic_distribution(self):
        """Satellite: at a fixed seed, selection frequencies over many
        draws sit within binomial tolerance of the analytic exponential-
        mechanism probabilities."""
        scores = [0.0, 1.0, 2.0, 4.0]
        epsilon = 2.0
        expected = selection_probabilities(scores, epsilon=epsilon)
        rng = np.random.default_rng(2024)
        draws = 8000
        counts = np.bincount(
            [worst_approximated(scores, epsilon, rng=rng) for _ in range(draws)],
            minlength=len(scores),
        )
        empirical = counts / draws
        # 4-sigma binomial band per candidate at the fixed seed
        tolerance = 4.0 * np.sqrt(expected * (1 - expected) / draws)
        assert np.all(np.abs(empirical - expected) <= tolerance)

    def test_single_candidate_is_deterministic(self):
        # no rng supplied: the degenerate case must not consume randomness
        assert worst_approximated([42.0], epsilon=0.001) == 0

    def test_zero_scores_select_uniformly(self):
        rng = np.random.default_rng(7)
        draws = 4000
        counts = np.bincount(
            [worst_approximated([0.0, 0.0], 1.0, rng=rng) for _ in range(draws)],
            minlength=2,
        )
        assert np.all(np.abs(counts / draws - 0.5) < 0.05)

    def test_fixed_seed_is_reproducible(self):
        scores = [1.0, 3.0, 2.0]
        first = worst_approximated(scores, 1.0, rng=np.random.default_rng(11))
        second = worst_approximated(scores, 1.0, rng=np.random.default_rng(11))
        assert first == second


class TestBoostedWorkload:
    def test_only_selected_rows_are_scaled(self):
        base = prefix(8)
        groups = partition_workload(base, 4)
        boosted = boosted_workload(base, groups, selected=2, boost=4.0)
        block = groups[2]
        assert np.array_equal(
            boosted.matrix[block.start : block.stop],
            4.0 * np.asarray(base.matrix)[block.start : block.stop],
        )
        untouched = np.ones(8, dtype=bool)
        untouched[block.start : block.stop] = False
        assert np.array_equal(
            boosted.matrix[untouched], np.asarray(base.matrix)[untouched]
        )
        assert f"boost {block.start}:{block.stop}" in boosted.name

    def test_rejects_bad_selection(self):
        base = histogram(4)
        groups = partition_workload(base, 2)
        with pytest.raises(ProtocolError):
            boosted_workload(base, groups, selected=5, boost=2.0)
        with pytest.raises(ProtocolError):
            boosted_workload(base, groups, selected=0, boost=0.0)
        with pytest.raises(ProtocolError):
            boosted_workload(base, [], selected=0, boost=2.0)
