"""Tests for the streaming, shard-parallel protocol engine."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.mechanisms import hadamard_response, randomized_response
from repro.protocol import (
    ProtocolSession,
    ShardAccumulator,
    audit_session,
    empirical_sampler_audit,
    run_protocol,
    session_cost_report,
    split_data_vector,
)
from repro.protocol.simulation import expand_users
from repro.workloads import histogram, prefix


@pytest.fixture
def session() -> ProtocolSession:
    return ProtocolSession(hadamard_response(8, 1.0), prefix(8))


class TestShardAccumulator:
    def test_add_reports_and_counts(self):
        accumulator = ShardAccumulator(4)
        accumulator.add_reports(np.array([0, 1, 1, 3]))
        assert np.array_equal(accumulator.histogram, [1, 2, 0, 1])
        assert accumulator.num_reports == 4

    def test_rejects_out_of_range_reports(self):
        with pytest.raises(ProtocolError):
            ShardAccumulator(4).add_reports(np.array([0, 4]))
        with pytest.raises(ProtocolError):
            ShardAccumulator(4).add_reports(np.array([-1]))

    def test_add_histogram_validates(self):
        accumulator = ShardAccumulator(3)
        with pytest.raises(ProtocolError):
            accumulator.add_histogram(np.array([1.0, 2.0]))
        with pytest.raises(ProtocolError):
            accumulator.add_histogram(np.array([1.0, -2.0, 0.0]))

    def test_merge_is_commutative_and_fresh(self):
        a = ShardAccumulator(3).add_reports(np.array([0, 0, 1]))
        b = ShardAccumulator(3).add_reports(np.array([2]))
        merged = a.merge(b)
        assert merged == b.merge(a)
        assert merged.num_reports == 4
        # merging must not mutate the inputs
        assert a.num_reports == 3 and b.num_reports == 1

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ProtocolError):
            ShardAccumulator(3).merge(ShardAccumulator(4))
        with pytest.raises(ProtocolError):
            ShardAccumulator.merge_all([ShardAccumulator(3), ShardAccumulator(4)])

    def test_merge_all(self):
        parts = [
            ShardAccumulator(3).add_reports(np.array([index]))
            for index in range(3)
        ]
        merged = ShardAccumulator.merge_all(parts)
        assert np.array_equal(merged.histogram, [1, 1, 1])
        assert merged.num_reports == 3
        with pytest.raises(ProtocolError):
            ShardAccumulator.merge_all([])

    def test_snapshot_is_independent(self):
        accumulator = ShardAccumulator(2).add_reports(np.array([0]))
        frozen = accumulator.snapshot()
        accumulator.add_reports(np.array([1, 1]))
        assert frozen.num_reports == 1
        assert np.array_equal(frozen.histogram, [1, 0])

    def test_serialization_round_trip(self):
        accumulator = ShardAccumulator(5).add_reports(np.array([0, 4, 4, 2]))
        restored = ShardAccumulator.from_bytes(accumulator.to_bytes())
        assert restored == accumulator

    def test_from_bytes_rejects_negative_counts(self):
        bad = ShardAccumulator(3)
        bad.histogram = np.array([1.0, -1.0, 0.0])
        with pytest.raises(ProtocolError):
            ShardAccumulator.from_bytes(bad.to_bytes())

    def test_payload_is_version_tagged(self):
        import io

        from repro.protocol import ACCUMULATOR_FORMAT_VERSION, ACCUMULATOR_MAGIC

        payload = ShardAccumulator(3).add_reports(np.array([1])).to_bytes()
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            assert str(archive["format_magic"]) == ACCUMULATOR_MAGIC
            assert int(archive["format_version"]) == ACCUMULATOR_FORMAT_VERSION

    def test_accepts_legacy_untagged_payload(self):
        # Payload layout written before the format tag existed.
        import io

        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            histogram=np.array([2.0, 0.0, 1.0]),
            num_reports=np.asarray(3, dtype=np.int64),
        )
        restored = ShardAccumulator.from_bytes(buffer.getvalue())
        assert restored.num_reports == 3
        assert np.array_equal(restored.histogram, [2.0, 0.0, 1.0])

    def test_rejects_wrong_magic_and_future_version(self):
        import io

        from repro.protocol import ACCUMULATOR_MAGIC

        def payload(magic, version):
            buffer = io.BytesIO()
            np.savez_compressed(
                buffer,
                format_magic=np.asarray(magic),
                format_version=np.asarray(version, dtype=np.int64),
                histogram=np.array([1.0]),
                num_reports=np.asarray(1, dtype=np.int64),
            )
            return buffer.getvalue()

        with pytest.raises(ProtocolError, match="magic"):
            ShardAccumulator.from_bytes(payload("some/other-blob", 1))
        with pytest.raises(ProtocolError, match="format version 99"):
            ShardAccumulator.from_bytes(payload(ACCUMULATOR_MAGIC, 99))

    def test_garbage_bytes_raise_protocol_error(self):
        with pytest.raises(ProtocolError, match="not a serialized"):
            ShardAccumulator.from_bytes(b"definitely not an npz payload")


class TestRoundTags:
    def test_default_round_is_zero(self):
        assert ShardAccumulator(4).round_id == 0

    def test_round_tag_survives_merge_snapshot_and_bytes(self):
        tagged = ShardAccumulator(4, 2).add_reports(np.array([1, 3]))
        other = ShardAccumulator(4, 2).add_reports(np.array([0]))
        merged = tagged.merge(other)
        assert merged.round_id == 2
        assert merged.snapshot().round_id == 2
        restored = ShardAccumulator.from_bytes(merged.to_bytes())
        assert restored == merged
        assert restored.round_id == 2

    def test_merge_refuses_cross_round_mix(self):
        # different rounds ran different strategies; folding them into one
        # histogram would silently corrupt the reconstruction
        round_one = ShardAccumulator(4, 1).add_reports(np.array([0]))
        round_two = ShardAccumulator(4, 2).add_reports(np.array([1]))
        with pytest.raises(ProtocolError, match="rounds 1 and 2"):
            round_one.merge(round_two)
        with pytest.raises(ProtocolError, match="different"):
            ShardAccumulator.merge_all([round_one, round_two])

    def test_untagged_payload_loads_as_round_zero(self):
        # payloads written before round tags existed stay readable
        import io

        from repro.protocol import (
            ACCUMULATOR_FORMAT_VERSION,
            ACCUMULATOR_MAGIC,
        )

        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            format_magic=np.asarray(ACCUMULATOR_MAGIC),
            format_version=np.asarray(ACCUMULATOR_FORMAT_VERSION, dtype=np.int64),
            histogram=np.array([1.0, 0.0]),
            num_reports=np.asarray(1, dtype=np.int64),
        )
        assert ShardAccumulator.from_bytes(buffer.getvalue()).round_id == 0

    def test_negative_round_rejected(self):
        with pytest.raises(ProtocolError, match="round id"):
            ShardAccumulator(4, -1)

    def test_session_mints_tagged_accumulators(self, session):
        accumulator = session.new_accumulator(3)
        assert accumulator.round_id == 3
        assert session.new_accumulator().round_id == 0


class TestSplitDataVector:
    def test_partition_is_exact_and_even(self):
        x = np.array([10.0, 3.0, 0.0, 7.0])
        shards = split_data_vector(x, 3)
        assert len(shards) == 3
        assert np.array_equal(np.sum(shards, axis=0), x)
        assert max(shard.sum() for shard in shards) <= min(
            shard.sum() for shard in shards
        ) + len(x)

    def test_single_shard_identity(self):
        x = np.array([4.0, 5.0])
        (only,) = split_data_vector(x, 1)
        assert np.array_equal(only, x)

    def test_rejects_bad_input(self):
        with pytest.raises(ProtocolError):
            split_data_vector(np.array([1.0, -1.0]), 2)
        with pytest.raises(ProtocolError):
            split_data_vector(np.array([1.0]), 0)


class TestProtocolSession:
    def test_rejects_domain_mismatch(self):
        with pytest.raises(ProtocolError):
            ProtocolSession(randomized_response(4, 1.0), prefix(5))

    def test_reuses_precomputed_operator(self, session):
        rebound = ProtocolSession(
            session.strategy, session.workload, session.operator
        )
        assert rebound.operator is session.operator

    def test_rejects_bad_operator_shape(self, session):
        with pytest.raises(ProtocolError):
            ProtocolSession(session.strategy, session.workload, np.eye(3))

    def test_finalize_rejects_foreign_accumulator(self, session):
        with pytest.raises(ProtocolError):
            session.finalize(ShardAccumulator(session.num_outputs + 1))

    def test_operator_is_frozen_even_when_supplied(self, session):
        rebound = ProtocolSession(
            session.strategy, session.workload, np.array(session.operator)
        )
        with pytest.raises(ValueError):
            rebound.operator[0, 0] = 1.0

    def test_rejects_nonpositive_chunk_size(self, session):
        x = np.full(8, 10.0)
        for bad in (0, -1):
            with pytest.raises(ProtocolError):
                session.run(x, fast=False, seed=0, chunk_size=bad)
            with pytest.raises(ProtocolError):
                session.randomize_shard(np.zeros(4, dtype=int), chunk_size=bad)

    def test_run_validates_arguments(self, session):
        x = np.full(8, 10.0)
        with pytest.raises(ProtocolError):
            session.run(x, backend="gpu")
        with pytest.raises(ProtocolError):
            session.run(x, rng=np.random.default_rng(0), seed=3)
        with pytest.raises(ProtocolError):
            session.run(x, rng=np.random.default_rng(0), num_shards=2)
        with pytest.raises(ProtocolError):
            session.run(np.full(7, 10.0))

    def test_epsilon_and_shapes(self, session):
        assert session.epsilon == 1.0
        assert session.domain_size == 8
        assert session.num_outputs == session.strategy.num_outputs


class TestShardMergeAssociativity:
    def test_sharded_run_matches_manual_single_pass(self, session):
        """K shards merged in any order == one accumulator fed sequentially."""
        x = (np.arange(8.0) + 1.0) * 25
        seed, num_shards = 42, 5
        result = session.run(x, num_shards=num_shards, seed=seed, fast=False)

        sequences = np.random.SeedSequence(seed).spawn(num_shards)
        shards = split_data_vector(x, num_shards)
        partials = [
            session.randomize_shard(
                expand_users(shard), np.random.default_rng(sequence)
            )
            for shard, sequence in zip(shards, sequences)
        ]
        merged_reversed = ShardAccumulator.merge_all(partials[::-1])
        single_pass = session.new_accumulator()
        for partial in partials:
            single_pass.add_histogram(partial.histogram)

        assert np.array_equal(
            result.response_vector, merged_reversed.histogram
        )
        assert np.array_equal(result.response_vector, single_pass.histogram)
        assert result.num_users == int(x.sum())

    def test_backends_are_bit_identical(self, session):
        x = np.full(8, 500.0)
        kwargs = dict(num_shards=4, seed=7, fast=False)
        serial = session.run(x, backend="serial", **kwargs)
        threaded = session.run(x, backend="thread", num_workers=2, **kwargs)
        assert np.array_equal(serial.response_vector, threaded.response_vector)
        assert np.array_equal(
            serial.workload_estimates, threaded.workload_estimates
        )

    def test_process_backend_matches_serial(self, session):
        x = np.full(8, 200.0)
        kwargs = dict(num_shards=2, seed=3, fast=False)
        serial = session.run(x, backend="serial", **kwargs)
        processed = session.run(x, backend="process", num_workers=2, **kwargs)
        assert np.array_equal(
            serial.response_vector, processed.response_vector
        )

    def test_fast_path_sharded_determinism(self, session):
        x = np.arange(8.0) * 100
        first = session.run(x, num_shards=6, seed=11)
        second = session.run(x, num_shards=6, seed=11, backend="thread")
        assert np.array_equal(first.response_vector, second.response_vector)


class TestEquivalenceContracts:
    def test_legacy_wrapper_matches_session_run(self):
        workload, strategy = histogram(4), randomized_response(4, 1.0)
        session = ProtocolSession(strategy, workload)
        x = np.array([30.0, 20.0, 10.0, 5.0])
        for fast in (True, False):
            wrapped = run_protocol(
                workload, strategy, x, np.random.default_rng(5), fast=fast
            )
            direct = session.run(x, rng=np.random.default_rng(5), fast=fast)
            assert np.array_equal(
                wrapped.response_vector, direct.response_vector
            )
            assert wrapped.num_users == direct.num_users

    def test_fast_vs_message_level_same_moments(self, session):
        x = np.array([40.0, 40.0, 20.0, 10.0, 10.0, 5.0, 5.0, 2.0]) * 3
        truth = session.workload.matvec(x)
        fast_mean = np.mean(
            [
                session.run(x, num_shards=3, seed=trial).workload_estimates
                for trial in range(200)
            ],
            axis=0,
        )
        slow_mean = np.mean(
            [
                session.run(
                    x, num_shards=3, seed=1000 + trial, fast=False
                ).workload_estimates
                for trial in range(200)
            ],
            axis=0,
        )
        assert np.allclose(fast_mean, truth, rtol=0.15, atol=10.0)
        assert np.allclose(fast_mean, slow_mean, atol=12.0)

    def test_message_path_chunk_size_invariant(self, session):
        x = np.full(8, 100.0)
        small = session.run(x, seed=2, fast=False, chunk_size=17)
        large = session.run(x, seed=2, fast=False, chunk_size=100_000)
        assert np.array_equal(small.response_vector, large.response_vector)


class TestVectorizedSampler:
    def test_matches_naive_cdf_comparison(self):
        strategy = hadamard_response(16, 1.0)
        types = np.random.default_rng(1).integers(0, 16, size=5000)
        rng_state = np.random.default_rng(9)
        responses = strategy.sample_responses(types, rng_state)
        cumulative = np.cumsum(strategy.probabilities, axis=0)
        reference = (
            np.random.default_rng(9).random(types.shape[0])[None, :]
            > cumulative[:, types]
        ).sum(axis=0)
        assert np.array_equal(responses, reference)

    def test_cdf_is_cached_and_read_only(self):
        strategy = randomized_response(6, 1.0)
        first = strategy.response_cdf()
        assert strategy.response_cdf() is first
        with pytest.raises(ValueError):
            first[0, 0] = 0.5

    def test_rejects_invalid_input(self):
        strategy = randomized_response(4, 1.0)
        with pytest.raises(ProtocolError):
            strategy.sample_responses(np.array([0, 4]))
        with pytest.raises(ProtocolError):
            strategy.sample_responses(np.array([0]), chunk_size=0)

    def test_empirical_sampler_audit_small_gap(self):
        strategy = randomized_response(5, 1.0)
        gap = empirical_sampler_audit(
            strategy, num_samples=40_000, rng=np.random.default_rng(0)
        )
        assert gap < 0.02


class TestSessionAccounting:
    def test_cost_report_fields(self, session):
        report = session_cost_report(session, num_shards=4)
        assert report.num_shards == 4
        assert report.accumulator_bytes == session.num_outputs * 8
        assert report.merge_traffic_bytes == 4 * report.accumulator_bytes
        assert (
            report.sampler_table_bytes
            == 2 * session.num_outputs * session.domain_size * 8
        )
        with pytest.raises(ValueError):
            session_cost_report(session, num_shards=0)

    def test_audit_session_matches_strategy(self, session):
        report = audit_session(session)
        assert report.satisfied
        assert report.epsilon_claimed == session.epsilon
