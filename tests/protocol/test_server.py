"""Tests for the server-side aggregator."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.mechanisms import randomized_response
from repro.protocol import Aggregator
from repro.workloads import histogram, prefix


@pytest.fixture
def aggregator() -> Aggregator:
    return Aggregator(randomized_response(4, 1.0), prefix(4))


class TestSubmission:
    def test_counts_reports(self, aggregator):
        aggregator.submit(0)
        aggregator.submit(2)
        aggregator.submit(2)
        assert aggregator.num_reports == 3
        assert np.array_equal(aggregator.response_vector(), [1, 0, 2, 0])

    def test_submit_many(self, aggregator):
        aggregator.submit_many(np.array([0, 1, 1, 3]))
        assert aggregator.num_reports == 4
        assert np.array_equal(aggregator.response_vector(), [1, 2, 0, 1])

    def test_submit_many_empty(self, aggregator):
        aggregator.submit_many(np.array([], dtype=int))
        assert aggregator.num_reports == 0

    def test_submit_histogram(self, aggregator):
        aggregator.submit_histogram(np.array([2.0, 0.0, 1.0, 0.0]))
        assert aggregator.num_reports == 3

    def test_rejects_out_of_range_report(self, aggregator):
        with pytest.raises(ProtocolError):
            aggregator.submit(4)
        with pytest.raises(ProtocolError):
            aggregator.submit_many(np.array([0, 9]))

    def test_rejects_bad_histogram(self, aggregator):
        with pytest.raises(ProtocolError):
            aggregator.submit_histogram(np.array([1.0, -1.0, 0.0, 0.0]))
        with pytest.raises(ProtocolError):
            aggregator.submit_histogram(np.ones(3))

    def test_response_vector_is_copy(self, aggregator):
        aggregator.submit(0)
        vector = aggregator.response_vector()
        vector[0] = 99
        assert aggregator.response_vector()[0] == 1


class TestEstimation:
    def test_domain_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            Aggregator(randomized_response(4, 1.0), histogram(5))

    def test_estimate_expected_response_recovers_truth(self):
        strategy = randomized_response(4, 1.0)
        aggregator = Aggregator(strategy, prefix(4))
        x = np.array([10.0, 5.0, 3.0, 2.0])
        aggregator.submit_histogram(strategy.probabilities @ x)
        assert np.allclose(aggregator.estimate_data_vector(), x, atol=1e-8)
        assert np.allclose(
            aggregator.estimate_workload(), prefix(4).matvec(x), atol=1e-8
        )
