"""Tests for protocol resource accounting and the multi-round budget ledger."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ProtocolError
from repro.mechanisms import hadamard_response, randomized_response, rappor
from repro.protocol import (
    BudgetLedger,
    communication_bits,
    compare_costs,
    cost_report,
    split_budget,
)


class TestCommunicationBits:
    @pytest.mark.parametrize("outputs,bits", [(2, 1), (3, 2), (16, 4), (17, 5)])
    def test_values(self, outputs, bits):
        assert communication_bits(outputs) == bits

    def test_minimum_one_bit(self):
        assert communication_bits(1) == 1


class TestCostReport:
    def test_randomized_response(self):
        report = cost_report(randomized_response(16, 1.0))
        assert report.num_outputs == 16
        assert report.communication_bits == 4
        assert report.client_distinct_levels == 2
        assert report.reconstruction_entries == 256

    def test_rappor_exponential_communication(self):
        # The reason the paper omits RAPPOR from large-domain experiments.
        small = cost_report(randomized_response(8, 1.0))
        heavy = cost_report(rappor(8, 1.0))
        assert heavy.communication_bits == 8
        assert heavy.num_outputs == 256
        assert heavy.num_outputs > small.num_outputs

    def test_compare_sorted_by_bits(self):
        reports = compare_costs(
            [rappor(8, 1.0), randomized_response(8, 1.0), hadamard_response(8, 1.0)]
        )
        bits = [report.communication_bits for report in reports]
        assert bits == sorted(bits)


positive_epsilon = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestBudgetLedger:
    def test_debits_accumulate_exactly(self):
        ledger = BudgetLedger(1.0)
        ledger.debit(0.1, round_id=1, purpose="collect")
        ledger.debit(0.2, round_id=2, purpose="collect")
        # 0.1 + 0.2 != 0.3 in floats; the ledger tracks exact Fractions of
        # the *float values actually debited*, so the sum is exact too.
        assert ledger.spent == Fraction(0.1) + Fraction(0.2)
        assert ledger.spent + ledger.remaining == ledger.total
        assert ledger.round_spent(1) == Fraction(0.1)

    def test_over_debit_raises_before_any_mutation(self):
        ledger = BudgetLedger(1.0)
        ledger.debit(0.75, round_id=1, purpose="collect")
        before = ledger.to_json()
        with pytest.raises(ProtocolError, match="exceeds the remaining"):
            ledger.debit(0.5, round_id=2, purpose="collect")
        assert ledger.to_json() == before
        assert len(ledger) == 1
        # the ledger still accepts a debit that fits exactly
        ledger.debit(ledger.remaining, round_id=2, purpose="collect")
        assert ledger.remaining == 0

    def test_invalid_debits_rejected(self):
        ledger = BudgetLedger(1.0)
        with pytest.raises(ProtocolError, match="positive"):
            ledger.debit(0.0, round_id=1, purpose="collect")
        with pytest.raises(ProtocolError, match="1-based"):
            ledger.debit(0.1, round_id=0, purpose="collect")
        with pytest.raises(ProtocolError, match="positive"):
            BudgetLedger(0.0)
        assert len(ledger) == 0

    def test_json_round_trip_is_exact(self):
        ledger = BudgetLedger(2.0)
        ledger.debit(Fraction(1, 3), round_id=1, purpose="collect")
        ledger.debit(0.1, round_id=2, purpose="select")
        restored = BudgetLedger.from_json(ledger.to_json())
        assert restored == ledger
        assert restored.spent == ledger.spent
        assert restored.to_json() == ledger.to_json()

    @given(
        total=positive_epsilon,
        splits=st.lists(
            st.integers(min_value=1, max_value=1000), min_size=1, max_size=8
        ),
    )
    def test_random_round_splits_conserve_epsilon_exactly(self, total, splits):
        """Property: however the budget is split, debiting every share
        spends the total *exactly* — no float drift, ever."""
        ledger = BudgetLedger(total)
        denominator = sum(splits)
        for round_id, numerator in enumerate(splits, start=1):
            share = ledger.total * Fraction(numerator, denominator)
            ledger.debit(share, round_id=round_id, purpose="collect")
        assert ledger.spent == ledger.total
        assert ledger.remaining == 0
        assert BudgetLedger.from_json(ledger.to_json()) == ledger

    @given(total=positive_epsilon, extra=positive_epsilon)
    def test_any_overspend_is_refused(self, total, extra):
        ledger = BudgetLedger(total)
        overdraft = ledger.total + Fraction(extra)
        with pytest.raises(ProtocolError):
            ledger.debit(overdraft, round_id=1, purpose="collect")
        assert ledger.spent == 0


class TestSplitBudget:
    @given(
        total=positive_epsilon,
        num_rounds=st.integers(min_value=1, max_value=12),
        selector_share=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_round_totals_sum_to_campaign_budget_exactly(
        self, total, num_rounds, selector_share
    ):
        rounds = split_budget(total, num_rounds, selector_share=selector_share)
        assert len(rounds) == num_rounds
        assert sum(r.total for r in rounds) == Fraction(total)
        # round 1 never pays the selector: there is nothing to select yet
        assert rounds[0].select == 0
        assert all(r.collect > 0 for r in rounds)

    def test_weights_shape_the_split(self):
        rounds = split_budget(1.0, 2, weights=[1, 3])
        assert rounds[0].total == Fraction(1, 4)
        assert rounds[1].total == Fraction(3, 4)

    def test_selector_share_carves_rounds_after_the_first(self):
        rounds = split_budget(2.0, 2, selector_share=0.25)
        assert rounds[0].select == 0
        assert rounds[1].select == rounds[1].total * Fraction(1, 4)
        assert rounds[1].collect + rounds[1].select == rounds[1].total

    def test_debiting_a_split_drains_the_ledger(self):
        """The contract the campaign manager relies on: debiting every
        split share, in schedule order, lands on zero remaining exactly."""
        ledger = BudgetLedger(0.3)
        rounds = split_budget(0.3, 3, selector_share=0.05)
        ledger.debit(rounds[0].collect, round_id=1, purpose="collect")
        for budget in rounds[1:]:
            ledger.debit(budget.select, round_id=budget.round_id, purpose="select")
            ledger.debit(budget.collect, round_id=budget.round_id, purpose="collect")
        assert ledger.remaining == 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ProtocolError, match="round"):
            split_budget(1.0, 0)
        with pytest.raises(ProtocolError, match="selector_share"):
            split_budget(1.0, 2, selector_share=1.0)
        with pytest.raises(ProtocolError, match="weights"):
            split_budget(1.0, 2, weights=[1, 2, 3])
        with pytest.raises(ProtocolError, match="positive"):
            split_budget(1.0, 2, weights=[1, -1])
