"""Tests for protocol resource accounting."""

import pytest

from repro.mechanisms import hadamard_response, randomized_response, rappor
from repro.protocol import communication_bits, compare_costs, cost_report


class TestCommunicationBits:
    @pytest.mark.parametrize("outputs,bits", [(2, 1), (3, 2), (16, 4), (17, 5)])
    def test_values(self, outputs, bits):
        assert communication_bits(outputs) == bits

    def test_minimum_one_bit(self):
        assert communication_bits(1) == 1


class TestCostReport:
    def test_randomized_response(self):
        report = cost_report(randomized_response(16, 1.0))
        assert report.num_outputs == 16
        assert report.communication_bits == 4
        assert report.client_distinct_levels == 2
        assert report.reconstruction_entries == 256

    def test_rappor_exponential_communication(self):
        # The reason the paper omits RAPPOR from large-domain experiments.
        small = cost_report(randomized_response(8, 1.0))
        heavy = cost_report(rappor(8, 1.0))
        assert heavy.communication_bits == 8
        assert heavy.num_outputs == 256
        assert heavy.num_outputs > small.num_outputs

    def test_compare_sorted_by_bits(self):
        reports = compare_costs(
            [rappor(8, 1.0), randomized_response(8, 1.0), hadamard_response(8, 1.0)]
        )
        bits = [report.communication_bits for report in reports]
        assert bits == sorted(bits)
