"""Tests for the factored protocol session and accumulator.

The decisive check: feeding the *same* per-attribute responses to the
factored pipeline (count tables + factor-wise reconstruction) and to the
dense pipeline (flat histogram + joint reconstruction) yields the same
marginal estimates — the implicit-operator path is an exact refactoring of
Theorem 3.10, not an approximation.
"""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.mechanisms import FactoredStrategy, randomized_response
from repro.protocol import (
    FactoredAccumulator,
    FactoredProtocolSession,
    ProtocolSession,
)
from repro.workloads import all_product_marginals, k_way_product_marginals

SIZES = (3, 2, 4)


def make_strategy(epsilon_each: float = 0.4) -> FactoredStrategy:
    return FactoredStrategy(
        tuple(randomized_response(size, epsilon_each) for size in SIZES)
    )


def make_session(workload=None) -> FactoredProtocolSession:
    return FactoredProtocolSession(
        make_strategy(), workload or all_product_marginals(SIZES)
    )


def random_rows(num_users: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.column_stack([rng.integers(0, size, num_users) for size in SIZES])


class TestFactoredAccumulator:
    def test_fold_matches_naive_counting(self):
        state = FactoredAccumulator((2, 3, 2), [(0, 2), (1,)])
        responses = np.array([[0, 2, 1], [1, 0, 1], [0, 2, 0], [0, 2, 1]])
        state.add_responses(responses)
        # subset (0, 2): axes descending -> (m_2, m_0); count [o2, o0].
        pair_table = np.zeros((2, 2), dtype=np.int64)
        for o0, _, o2 in responses:
            pair_table[o2, o0] += 1
        assert np.array_equal(state.tables[0], pair_table)
        assert np.array_equal(state.tables[1], np.array([1, 0, 3]))
        assert state.num_reports == 4

    def test_empty_subset_counts_reports(self):
        state = FactoredAccumulator((2, 2), [()])
        state.add_responses(np.array([[0, 1], [1, 0], [1, 1]]))
        assert np.array_equal(state.tables[0], np.array([3]))

    def test_merge_is_exact_and_commutative(self):
        subsets = [(0,), (0, 1)]
        left = FactoredAccumulator((3, 4), subsets)
        right = FactoredAccumulator((3, 4), subsets)
        rng = np.random.default_rng(0)
        a = np.column_stack([rng.integers(0, 3, 50), rng.integers(0, 4, 50)])
        b = np.column_stack([rng.integers(0, 3, 20), rng.integers(0, 4, 20)])
        left.add_responses(a)
        right.add_responses(b)
        both = FactoredAccumulator((3, 4), subsets)
        both.add_responses(np.vstack([a, b]))
        assert left.merge(right) == right.merge(left) == both

    def test_merge_all_and_snapshot(self):
        subsets = [(0,)]
        shards = []
        for seed in range(4):
            shard = FactoredAccumulator((3,), subsets)
            shard.add_responses(
                np.random.default_rng(seed).integers(0, 3, (10, 1))
            )
            shards.append(shard)
        merged = FactoredAccumulator.merge_all(shards)
        assert merged.num_reports == 40
        frozen = shards[0].snapshot()
        shards[0].add_responses(np.array([[0]]))
        assert frozen.num_reports == 10

    def test_serialization_round_trip(self):
        state = FactoredAccumulator((2, 3), [(0,), (1,), (0, 1)])
        state.add_responses(np.array([[0, 2], [1, 1], [1, 2]]))
        restored = FactoredAccumulator.from_bytes(state.to_bytes())
        assert restored == state

    def test_from_bytes_rejects_garbage_and_wrong_magic(self):
        with pytest.raises(ProtocolError):
            FactoredAccumulator.from_bytes(b"not an npz")
        from repro.protocol import ShardAccumulator

        dense_payload = ShardAccumulator(4).to_bytes()
        with pytest.raises(ProtocolError):
            FactoredAccumulator.from_bytes(dense_payload)

    def test_rejects_out_of_range_and_bad_shape(self):
        state = FactoredAccumulator((2, 2), [(0,)])
        with pytest.raises(ProtocolError):
            state.add_responses(np.array([[0, 2]]))  # attr 1 out of range
        with pytest.raises(ProtocolError):
            state.add_responses(np.array([[0]]))  # wrong width
        with pytest.raises(ProtocolError):
            state.merge(FactoredAccumulator((2, 2), [(1,)]))


class TestFactoredSessionEquivalence:
    def test_matches_dense_session_on_same_responses(self):
        workload = all_product_marginals(SIZES)
        strategy = make_strategy()
        session = FactoredProtocolSession(strategy, workload)
        rows = random_rows(400, seed=5)
        responses = strategy.sample_attribute_responses(
            rows, np.random.default_rng(9)
        )
        factored = session.finalize(
            session.new_accumulator().add_responses(responses)
        )

        dense_session = ProtocolSession(strategy.materialize(), workload)
        dense_accumulator = dense_session.new_accumulator().add_reports(
            strategy.flatten_responses(responses)
        )
        dense = dense_session.finalize(dense_accumulator)

        scale = max(1.0, float(np.max(np.abs(dense.workload_estimates))))
        assert np.allclose(
            factored.workload_estimates,
            dense.workload_estimates,
            atol=1e-9 * scale,
        )
        assert factored.num_users == dense.num_users == 400

    def test_marginal_estimates_keyed_by_subset(self):
        session = make_session(k_way_product_marginals(SIZES, 1))
        result = session.run(random_rows(100, seed=1), seed=0)
        assert set(result.marginal_estimates) == {(0,), (1,), (2,)}
        assert result.marginal_estimates[(2,)].shape == (4,)
        # Unbiasedness sanity: each marginal estimate sums to ~N exactly
        # (1^T B_i = 1^T makes the total exactly the report count).
        for estimate in result.marginal_estimates.values():
            assert np.isclose(estimate.sum(), 100.0, atol=1e-6)

    def test_estimates_converge_to_truth(self):
        rng = np.random.default_rng(0)
        num_users = 40_000
        rows = np.column_stack(
            [rng.integers(0, size, num_users) for size in SIZES]
        )
        strategy = FactoredStrategy(
            tuple(randomized_response(size, 2.0) for size in SIZES)
        )
        workload = k_way_product_marginals(SIZES, 1)
        session = FactoredProtocolSession(strategy, workload)
        result = session.run(rows, seed=3)
        truth = np.concatenate(
            [
                np.bincount(rows[:, attribute], minlength=SIZES[attribute])
                for attribute in range(len(SIZES))
            ]
        ).astype(float)
        # Loose statistical check: within a few percent of the population.
        assert np.max(np.abs(result.workload_estimates - truth)) < 0.05 * num_users


class TestFactoredSessionExecution:
    def test_sharded_runs_bit_identical_across_backends(self):
        session = make_session()
        rows = random_rows(300, seed=2)
        serial = session.run(rows, num_shards=4, backend="serial", seed=7)
        threaded = session.run(rows, num_shards=4, backend="thread", seed=7)
        assert np.array_equal(
            serial.workload_estimates, threaded.workload_estimates
        )
        assert serial.num_users == threaded.num_users == 300

    def test_shard_count_changes_only_randomness_partition(self):
        session = make_session()
        rows = random_rows(120, seed=4)
        one = session.run(rows, num_shards=1, seed=0)
        many = session.run(rows, num_shards=6, seed=0)
        assert one.num_users == many.num_users
        assert one.workload_estimates.shape == many.workload_estimates.shape

    def test_validation_errors(self):
        session = make_session()
        with pytest.raises(ProtocolError):
            session.run(random_rows(10, seed=0), backend="bogus")
        with pytest.raises(ProtocolError):
            session.run(np.zeros((10, 2), dtype=int))  # wrong width
        with pytest.raises(ProtocolError):
            session.run(
                random_rows(10, seed=0),
                rng=np.random.default_rng(0),
                num_shards=2,
            )
        with pytest.raises(ProtocolError):
            FactoredProtocolSession(
                make_strategy(), k_way_product_marginals((3, 2, 5), 1)
            )

    def test_finalize_rejects_mismatched_accumulator(self):
        session = make_session(k_way_product_marginals(SIZES, 1))
        wrong = FactoredAccumulator(
            tuple(4 * size for size in SIZES), [(0, 1)]
        )
        with pytest.raises(ProtocolError):
            session.finalize(wrong)

    def test_session_with_optimized_factored_strategy(self):
        from repro.optimization import (
            FactoredOptimizerConfig,
            OptimizerConfig,
            optimize_factored_strategy,
        )

        workload = k_way_product_marginals(SIZES, 2)
        result = optimize_factored_strategy(
            workload,
            1.0,
            FactoredOptimizerConfig(
                base=OptimizerConfig(num_iterations=40, seed=0), rounds=1
            ),
        )
        session = FactoredProtocolSession(result.strategy, workload)
        outcome = session.run(random_rows(200, seed=6), seed=1)
        assert outcome.workload_estimates.shape == (workload.num_queries,)


class TestMillionCellSession:
    def test_marginals_over_million_cell_domain(self):
        import tracemalloc
        from math import prod

        sizes = (64, 64, 16, 16)
        assert prod(sizes) > 1_000_000
        strategy = FactoredStrategy(
            tuple(randomized_response(size, 0.5) for size in sizes)
        )
        workload = k_way_product_marginals(sizes, 2)
        rng = np.random.default_rng(0)
        rows = np.column_stack(
            [rng.integers(0, size, 2000) for size in sizes]
        )
        tracemalloc.start()
        session = FactoredProtocolSession(strategy, workload)
        result = session.run(rows, seed=0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.num_users == 2000
        assert result.workload_estimates.shape == (workload.num_queries,)
        # Never anything close to a length-n (8 MB) float vector, let
        # alone the m x n joint strategy.
        assert peak < 4 * prod(sizes)
