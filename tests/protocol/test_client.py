"""Tests for the client-side randomizer."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.mechanisms import hadamard_response, randomized_response
from repro.protocol import LocalRandomizer


class TestRespond:
    def test_output_in_range(self, rng):
        randomizer = LocalRandomizer(randomized_response(5, 1.0), rng)
        for user_type in range(5):
            assert 0 <= randomizer.respond(user_type) < 5

    def test_rejects_out_of_domain(self, rng):
        randomizer = LocalRandomizer(randomized_response(5, 1.0), rng)
        with pytest.raises(ProtocolError):
            randomizer.respond(5)
        with pytest.raises(ProtocolError):
            randomizer.respond(-1)

    def test_high_epsilon_mostly_truthful(self, rng):
        randomizer = LocalRandomizer(randomized_response(4, 8.0), rng)
        responses = [randomizer.respond(2) for _ in range(200)]
        assert np.mean(np.array(responses) == 2) > 0.9


class TestRespondMany:
    def test_shape(self, rng):
        randomizer = LocalRandomizer(hadamard_response(5, 1.0), rng)
        users = np.array([0, 1, 2, 3, 4, 0, 1])
        responses = randomizer.respond_many(users)
        assert responses.shape == (7,)
        assert (responses >= 0).all()
        assert (responses < randomizer.strategy.num_outputs).all()

    def test_empty_batch(self, rng):
        randomizer = LocalRandomizer(randomized_response(3, 1.0), rng)
        assert randomizer.respond_many(np.array([], dtype=int)).size == 0

    def test_rejects_out_of_domain(self, rng):
        randomizer = LocalRandomizer(randomized_response(3, 1.0), rng)
        with pytest.raises(ProtocolError):
            randomizer.respond_many(np.array([0, 3]))

    def test_distribution_matches_strategy_column(self, rng):
        strategy = randomized_response(3, 1.0)
        randomizer = LocalRandomizer(strategy, rng)
        responses = randomizer.respond_many(np.full(60_000, 1))
        frequencies = np.bincount(responses, minlength=3) / 60_000
        assert np.allclose(frequencies, strategy.probabilities[:, 1], atol=0.01)
