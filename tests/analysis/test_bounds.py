"""Tests for the SVD lower bounds (Theorem 5.6, Corollary 5.7, Example 5.8)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    sample_complexity_lower_bound,
    strategy_objective,
    strategy_objective_lower_bound,
    worst_case_variance_lower_bound,
)
from repro.mechanisms import (
    hadamard_response,
    hierarchical,
    randomized_response,
)
from repro.workloads import all_range, histogram, parity, prefix


class TestTheorem56:
    @pytest.mark.parametrize(
        "workload", [histogram(8), prefix(8), all_range(8), parity(3, 3)]
    )
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_bound_holds_for_baselines(self, workload, epsilon):
        bound = strategy_objective_lower_bound(workload, epsilon)
        n = workload.domain_size
        for build in (randomized_response, hadamard_response, hierarchical):
            value = strategy_objective(build(n, epsilon).probabilities, workload.gram())
            assert value >= bound * (1 - 1e-9)

    @given(st.integers(min_value=0, max_value=30))
    def test_bound_holds_for_random_strategies(self, seed):
        from repro.optimization import initial_bounds, project_columns

        epsilon = 1.0
        workload = prefix(5)
        raw = np.random.default_rng(seed).random((20, 5))
        strategy = project_columns(raw, initial_bounds(20, epsilon), epsilon).matrix
        value = strategy_objective(strategy, workload.gram())
        assert value >= strategy_objective_lower_bound(workload, epsilon) * (1 - 1e-9)

    def test_histogram_closed_form(self):
        # For W = I the bound is n^2 / e^eps.
        workload = histogram(16)
        assert np.isclose(
            strategy_objective_lower_bound(workload, 1.0), 256 / np.e
        )

    def test_bound_decreases_with_epsilon(self):
        workload = prefix(8)
        assert strategy_objective_lower_bound(
            workload, 2.0
        ) < strategy_objective_lower_bound(workload, 1.0)


class TestCorollary57:
    def test_worst_case_bound_below_realized(self):
        from repro.analysis import worst_case_variance

        workload = prefix(8)
        epsilon = 1.0
        bound = worst_case_variance_lower_bound(workload, epsilon)
        realized = worst_case_variance(
            randomized_response(8, epsilon).probabilities, workload.gram()
        )
        assert bound <= realized

    def test_can_be_vacuous_at_large_epsilon(self):
        assert worst_case_variance_lower_bound(histogram(8), 10.0) < 0


class TestExample58:
    @pytest.mark.parametrize("size", [8, 64, 512])
    def test_histogram_sample_complexity_bound(self, size):
        # (1/alpha)(e^-eps - 1/n).
        epsilon, alpha = 1.0, 0.01
        expected = max(0.0, (np.exp(-epsilon) - 1.0 / size) / alpha)
        assert np.isclose(
            sample_complexity_lower_bound(histogram(size), epsilon, alpha), expected
        )

    def test_weak_dependence_on_domain_size(self):
        # The observation motivating Section 6.3's Histogram panel.
        small = sample_complexity_lower_bound(histogram(64), 1.0)
        large = sample_complexity_lower_bound(histogram(1024), 1.0)
        assert large / small < 1.05

    def test_clipped_at_zero(self):
        assert sample_complexity_lower_bound(histogram(8), 10.0) == 0.0


class TestHardnessOrdering:
    def test_parity_harder_than_histogram(self):
        # Section 6.2: hardness is characterized by singular values; Parity's
        # bound is far above Histogram's per query.
        epsilon = 1.0
        histogram_bound = sample_complexity_lower_bound(histogram(32), epsilon)
        parity_bound = sample_complexity_lower_bound(parity(5, 3), epsilon)
        assert parity_bound > histogram_bound
