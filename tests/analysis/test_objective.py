"""Tests for the strategy-only objective L(Q) (Theorem 3.11)."""

import numpy as np
import pytest

from repro.analysis import strategy_objective, trace_objective
from repro.mechanisms import hadamard_response, hierarchical, randomized_response
from repro.workloads import prefix


class TestStrategyObjective:
    @pytest.mark.parametrize("build", [randomized_response, hadamard_response, hierarchical])
    def test_equals_trace_objective_at_optimal_v(self, build):
        # Theorem 3.11 is Theorem 3.9 with the optimal V plugged in.
        workload = prefix(6)
        strategy = build(6, 1.0).probabilities
        assert np.isclose(
            strategy_objective(strategy, workload.gram()),
            trace_objective(strategy, workload.gram()),
            rtol=1e-9,
        )

    def test_rr_histogram_closed_form(self):
        # For RR, D = I and A = Q^T Q, so L(Q) = tr[(Q^T Q)^{-1}] has a
        # closed form through the eigenvalues of Q.
        size, epsilon = 6, 1.0
        strategy = randomized_response(size, epsilon).probabilities
        eigenvalues = np.linalg.eigvalsh(strategy.T @ strategy)
        assert np.isclose(
            strategy_objective(strategy, np.eye(size)), np.sum(1.0 / eigenvalues)
        )

    def test_scaling_with_workload(self):
        workload = prefix(5)
        strategy = randomized_response(5, 1.0).probabilities
        base = strategy_objective(strategy, workload.gram())
        assert np.isclose(strategy_objective(strategy, 4.0 * workload.gram()), 4 * base)

    def test_monotone_in_epsilon_for_rr(self):
        values = [
            strategy_objective(
                randomized_response(8, epsilon).probabilities, np.eye(8)
            )
            for epsilon in (0.5, 1.0, 2.0, 4.0)
        ]
        assert values == sorted(values, reverse=True)
