"""Tests for the variance formulas (Theorem 3.4, Corollaries 3.5/3.6,
Theorem 3.9) — including a statistical check against protocol simulation."""

import numpy as np
import pytest
from repro.analysis import (
    average_case_variance,
    per_user_variances,
    total_variance,
    trace_objective,
    worst_case_variance,
)
from repro.exceptions import WorkloadError
from repro.mechanisms import hadamard_response, hierarchical, randomized_response
from repro.workloads import prefix


class TestPerUserVariances:
    def test_non_negative(self):
        for build in (randomized_response, hadamard_response, hierarchical):
            strategy = build(8, 1.0).probabilities
            t = per_user_variances(strategy, prefix(8).gram())
            assert t.min() >= -1e-9

    def test_rr_symmetric_on_histogram(self):
        strategy = randomized_response(6, 1.0).probabilities
        t = per_user_variances(strategy, np.eye(6))
        assert np.allclose(t, t[0])

    def test_matches_direct_formula(self):
        # Direct evaluation of Theorem 3.4 with explicit V.
        workload = prefix(5)
        strategy = hadamard_response(5, 1.0).probabilities
        from repro.analysis import optimal_reconstruction

        v = optimal_reconstruction(workload.matrix, strategy)
        direct = np.zeros(5)
        for u in range(5):
            q = strategy[:, u]
            for i in range(v.shape[0]):
                direct[u] += v[i] @ (q * v[i]) - (v[i] @ q) ** 2
        assert np.allclose(per_user_variances(strategy, workload.gram()), direct)

    def test_custom_operator_never_beats_optimal(self, rng):
        workload = prefix(6)
        strategy = hierarchical(6, 1.0).probabilities
        optimal = per_user_variances(strategy, workload.gram()).sum()
        # A valid but sub-optimal reconstruction: plain pseudo-inverse.
        operator = np.linalg.pinv(strategy)
        suboptimal = per_user_variances(strategy, workload.gram(), operator).sum()
        assert optimal <= suboptimal + 1e-9


class TestAggregates:
    def test_total_variance_weights_by_counts(self):
        strategy = randomized_response(4, 1.0).probabilities
        gram = prefix(4).gram()
        t = per_user_variances(strategy, gram)
        x = np.array([3.0, 0.0, 5.0, 2.0])
        assert np.isclose(total_variance(strategy, gram, x), x @ t)

    def test_total_variance_shape_check(self):
        strategy = randomized_response(4, 1.0).probabilities
        with pytest.raises(WorkloadError):
            total_variance(strategy, prefix(4).gram(), np.ones(5))

    def test_worst_at_least_average(self):
        strategy = hierarchical(8, 1.0).probabilities
        gram = prefix(8).gram()
        assert worst_case_variance(strategy, gram) >= average_case_variance(
            strategy, gram
        )

    def test_scaling_with_num_users(self):
        strategy = randomized_response(4, 1.0).probabilities
        gram = np.eye(4)
        assert np.isclose(
            worst_case_variance(strategy, gram, num_users=10.0),
            10.0 * worst_case_variance(strategy, gram),
        )


class TestTheorem39:
    @pytest.mark.parametrize("build", [randomized_response, hadamard_response, hierarchical])
    def test_trace_objective_relation(self, build):
        # L_avg = (N/n)(L(V,Q) - ||W||_F^2) with N = n here.
        workload = prefix(6)
        strategy = build(6, 1.0).probabilities
        left = average_case_variance(strategy, workload.gram(), num_users=6.0)
        right = trace_objective(strategy, workload.gram()) - workload.frobenius_norm_squared()
        assert np.isclose(left, right, rtol=1e-8)


class TestAgainstSimulation:
    def test_empirical_variance_matches_theorem_3_4(self, rng):
        # Simulate the mechanism many times and compare the empirical total
        # squared error with the analytic prediction.
        workload = prefix(4)
        strategy = randomized_response(4, 1.0)
        from repro.analysis import reconstruction_operator

        operator = reconstruction_operator(strategy.probabilities)
        x = np.array([30.0, 10.0, 5.0, 15.0])
        truth = workload.matvec(x)
        predicted = total_variance(strategy.probabilities, workload.gram(), x)
        errors = []
        for _ in range(400):
            y = strategy.sample_histogram(x, rng)
            estimate = workload.matvec(operator @ y)
            errors.append(np.sum((estimate - truth) ** 2))
        empirical = np.mean(errors)
        assert np.isclose(empirical, predicted, rtol=0.15)
