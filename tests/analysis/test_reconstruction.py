"""Tests for Theorem 3.10 (optimal reconstruction) and feasibility checks."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    factorization_residual,
    is_factorizable,
    optimal_reconstruction,
    reconstruction_operator,
    scaled_gram,
    strategy_row_sums,
)
from repro.analysis.variance import trace_objective
from repro.mechanisms import fourier, hadamard_response, hierarchical, randomized_response
from repro.workloads import histogram, prefix


def random_feasible_strategy(num_outputs, domain_size, epsilon, seed):
    from repro.optimization import initial_bounds, project_columns

    raw = np.random.default_rng(seed).random((num_outputs, domain_size))
    return project_columns(raw, initial_bounds(num_outputs, epsilon), epsilon).matrix


class TestRowSumsAndScaledGram:
    def test_row_sums(self):
        matrix = np.array([[0.25, 0.75], [0.75, 0.25]])
        assert np.array_equal(strategy_row_sums(matrix), [1.0, 1.0])

    def test_scaled_gram_definition(self):
        strategy = hierarchical(8, 1.0).probabilities
        d = strategy.sum(axis=1)
        expected = strategy.T @ (strategy / d[:, None])
        assert np.allclose(scaled_gram(strategy), expected)

    def test_scaled_gram_skips_dead_rows(self):
        strategy = np.array([[0.5, 0.5], [0.0, 0.0], [0.5, 0.5]])
        assert np.all(np.isfinite(scaled_gram(strategy)))


class TestReconstructionOperator:
    def test_factorizes_through_workload(self):
        strategy = hadamard_response(6, 1.0).probabilities
        operator = reconstruction_operator(strategy)
        # B Q is the identity when Q has full column rank.
        assert np.allclose(operator @ strategy, np.eye(6), atol=1e-8)

    def test_optimal_reconstruction_equals_w_times_b(self):
        workload = prefix(5)
        strategy = randomized_response(5, 1.0).probabilities
        v = optimal_reconstruction(workload.matrix, strategy)
        assert np.allclose(v, workload.matrix @ reconstruction_operator(strategy))

    def test_optimality_against_perturbations(self):
        # Theorem 3.10: the returned V minimizes tr[V D V^T] among all valid
        # factorizations, so any perturbation in the null space of Q^T can
        # only increase the objective.
        workload = prefix(4)
        strategy = random_feasible_strategy(12, 4, 1.0, seed=0)
        operator = reconstruction_operator(strategy)
        baseline = trace_objective(strategy, workload.gram(), operator)
        generator = np.random.default_rng(1)
        null_space = np.eye(12) - strategy @ np.linalg.pinv(strategy)
        for _ in range(10):
            perturbation = generator.normal(size=(4, 12)) @ null_space
            disturbed = operator + 0.1 * perturbation
            # Still a valid factorization (W = W B' Q).
            assert np.allclose(disturbed @ strategy, operator @ strategy, atol=1e-8)
            assert (
                trace_objective(strategy, workload.gram(), disturbed)
                >= baseline - 1e-9
            )

    def test_handles_dead_rows(self):
        strategy = np.vstack([randomized_response(4, 1.0).probabilities, np.zeros(4)])
        operator = reconstruction_operator(strategy)
        assert operator.shape == (4, 5)
        assert np.allclose(operator[:, -1], 0.0)


class TestFeasibility:
    def test_full_rank_strategy_factorizes_everything(self):
        strategy = randomized_response(6, 1.0).probabilities
        assert is_factorizable(prefix(6).gram(), strategy)

    def test_residual_zero_for_feasible(self):
        strategy = hadamard_response(5, 1.0).probabilities
        assert factorization_residual(histogram(5).gram(), strategy) < 1e-9

    def test_residual_positive_for_infeasible(self):
        limited = fourier(8, 1.0, degree=1).probabilities
        assert factorization_residual(histogram(8).gram(), limited) > 0.1

    @given(st.integers(min_value=0, max_value=50))
    def test_random_full_rank_strategies_feasible(self, seed):
        strategy = random_feasible_strategy(16, 4, 1.0, seed)
        assert is_factorizable(prefix(4).gram(), strategy)
