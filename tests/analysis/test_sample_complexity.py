"""Tests for sample complexity (Corollaries 5.3/5.4, Examples 5.5/5.8)."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_ALPHA,
    randomized_response_sample_complexity,
    randomized_response_variance,
    sample_complexity,
    sample_complexity_from_variances,
    sample_complexity_on_distribution,
)
from repro.exceptions import WorkloadError
from repro.mechanisms import randomized_response
from repro.workloads import prefix


class TestFromVariances:
    def test_formula(self):
        t = np.array([1.0, 4.0, 2.0])
        assert sample_complexity_from_variances(t, num_queries=10, alpha=0.1) == 4.0

    def test_rejects_bad_alpha(self):
        with pytest.raises(WorkloadError):
            sample_complexity_from_variances(np.ones(3), 5, alpha=0.0)


class TestExample55:
    @pytest.mark.parametrize("size,epsilon", [(8, 0.5), (16, 1.0), (64, 2.0)])
    def test_closed_form_matches_numeric(self, size, epsilon):
        strategy = randomized_response(size, epsilon)
        numeric = sample_complexity(
            strategy.probabilities, np.eye(size), num_queries=size
        )
        closed = randomized_response_sample_complexity(size, epsilon)
        assert np.isclose(numeric, closed, rtol=1e-10)

    def test_consistent_with_variance_closed_form(self):
        size, epsilon = 8, 1.0
        variance = randomized_response_variance(size, epsilon)
        expected = variance / (size * PAPER_ALPHA)
        assert np.isclose(
            randomized_response_sample_complexity(size, epsilon), expected
        )

    def test_roughly_linear_in_domain_size(self):
        # Example 5.5's observation: RR sample complexity grows ~ linearly.
        small = randomized_response_sample_complexity(64, 1.0)
        large = randomized_response_sample_complexity(256, 1.0)
        assert 2.0 < large / small < 8.0


class TestDataDependent:
    def test_point_mass_on_worst_type_equals_worst_case(self):
        strategy = randomized_response(4, 1.0)
        from repro.analysis import per_user_variances

        gram = prefix(4).gram()
        t = per_user_variances(strategy.probabilities, gram)
        distribution = np.zeros(4)
        distribution[np.argmax(t)] = 1.0
        worst = sample_complexity(strategy.probabilities, gram, 4)
        data = sample_complexity_on_distribution(
            strategy.probabilities, gram, 4, distribution
        )
        assert np.isclose(worst, data)

    def test_never_exceeds_worst_case(self, rng):
        strategy = randomized_response(6, 1.0)
        gram = prefix(6).gram()
        worst = sample_complexity(strategy.probabilities, gram, 6)
        for _ in range(10):
            distribution = rng.dirichlet(np.ones(6))
            data = sample_complexity_on_distribution(
                strategy.probabilities, gram, 6, distribution
            )
            assert data <= worst + 1e-9

    def test_unnormalized_distribution_accepted(self):
        strategy = randomized_response(4, 1.0)
        gram = np.eye(4)
        a = sample_complexity_on_distribution(
            strategy.probabilities, gram, 4, np.array([1.0, 1.0, 1.0, 1.0])
        )
        b = sample_complexity_on_distribution(
            strategy.probabilities, gram, 4, np.array([25.0, 25.0, 25.0, 25.0])
        )
        assert np.isclose(a, b)

    def test_rejects_negative_distribution(self):
        strategy = randomized_response(4, 1.0)
        with pytest.raises(WorkloadError):
            sample_complexity_on_distribution(
                strategy.probabilities, np.eye(4), 4, np.array([1.0, -1.0, 1.0, 1.0])
            )

    def test_rejects_zero_distribution(self):
        strategy = randomized_response(4, 1.0)
        with pytest.raises(WorkloadError):
            sample_complexity_on_distribution(
                strategy.probabilities, np.eye(4), 4, np.zeros(4)
            )
