"""Tests for privacy-budget planning."""

import numpy as np
import pytest

from repro.analysis import achievable_alpha, epsilon_for_population
from repro.exceptions import OptimizationError
from repro.mechanisms import by_name
from repro.workloads import histogram, prefix


class TestEpsilonForPopulation:
    def test_meets_the_requirement(self):
        mechanism = by_name("Hadamard")
        workload = histogram(16)
        epsilon = epsilon_for_population(mechanism, workload, num_users=5_000)
        assert mechanism.sample_complexity(workload, epsilon) <= 5_000

    def test_near_minimal(self):
        mechanism = by_name("Hadamard")
        workload = histogram(16)
        epsilon = epsilon_for_population(
            mechanism, workload, num_users=5_000, tolerance=1e-4
        )
        slightly_less = max(0.05, epsilon - 0.05)
        if slightly_less < epsilon:
            assert mechanism.sample_complexity(workload, slightly_less) > 5_000 * 0.99

    def test_more_users_allow_smaller_epsilon(self):
        mechanism = by_name("Randomized Response")
        workload = prefix(8)
        small_pop = epsilon_for_population(mechanism, workload, 2_000)
        large_pop = epsilon_for_population(mechanism, workload, 200_000)
        assert large_pop < small_pop

    def test_insufficient_population_rejected(self):
        # Cap the search at eps = 0.5, where Prefix needs tens of thousands
        # of users — one user can never satisfy it.
        mechanism = by_name("Randomized Response")
        with pytest.raises(OptimizationError):
            epsilon_for_population(mechanism, prefix(16), num_users=1, high=0.5)

    def test_generous_population_returns_low(self):
        mechanism = by_name("Hadamard")
        epsilon = epsilon_for_population(
            mechanism, histogram(8), num_users=1e12, low=0.1
        )
        assert epsilon == 0.1

    def test_rejects_nonpositive_population(self):
        with pytest.raises(OptimizationError):
            epsilon_for_population(by_name("Hadamard"), histogram(8), 0)


class TestAchievableAlpha:
    def test_inverts_sample_complexity(self):
        mechanism = by_name("Hadamard")
        workload = histogram(16)
        alpha = achievable_alpha(mechanism, workload, num_users=10_000, epsilon=1.0)
        assert np.isclose(
            mechanism.sample_complexity(workload, 1.0, alpha=alpha), 10_000
        )

    def test_shrinks_with_population(self):
        mechanism = by_name("Hadamard")
        workload = histogram(16)
        small = achievable_alpha(mechanism, workload, 1_000, 1.0)
        large = achievable_alpha(mechanism, workload, 100_000, 1.0)
        assert large < small
