"""Unit tests for the metrics registry: exact quantiles, commutative
snapshot merges, and valid Prometheus text exposition."""

import math
import pickle
import re

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)

# The two line shapes the Prometheus text format allows (comments and
# samples); scripts/service_smoke.py applies the same discipline to the
# live endpoint.
PROM_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")
PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? "
    r"(?:[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|Inf)|NaN)$"
)


def assert_valid_exposition(text):
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line:
            continue
        pattern = PROM_COMMENT if line.startswith("#") else PROM_SAMPLE
        assert pattern.match(line), f"malformed exposition line: {line!r}"


class TestCounter:
    def test_increments_and_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_callback_sampled_on_read(self):
        gauge = MetricsRegistry().gauge("g")
        box = {"v": 1.0}
        gauge.set_function(lambda: box["v"])
        assert gauge.value == 1.0
        box["v"] = 7.0
        assert gauge.value == 7.0
        gauge.set(3.0)  # explicit set clears the callback
        assert gauge.value == 3.0


class TestHistogram:
    def test_exact_quantiles(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            h.observe(value)
        assert h.count == 4
        assert h.sum == pytest.approx(6.5)
        assert h.quantile(0.0) == 1.0  # rank clamps to the first observation
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.5) == 2.0
        assert h.quantile(0.99) == 4.0

    def test_overflow_bucket_reports_recorded_max(self):
        h = Histogram(bounds=(1.0,))
        h.observe(123.0)
        assert h.quantile(0.99) == 123.0

    def test_empty_quantile_is_nan_and_bounds_checked(self):
        h = Histogram(bounds=(1.0,))
        assert math.isnan(h.quantile(0.5))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            h.quantile(1.5)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="distinct and ascending"):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="distinct and ascending"):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="implicit"):
            Histogram(bounds=(1.0, math.inf))

    def test_percentiles_keys(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(0.5)
        assert set(h.percentiles()) == {"p50", "p95", "p99"}

    def test_snapshot_is_plain_picklable_data(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(1.5)
        snap = h.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert snap["count"] == 1 and snap["min"] == snap["max"] == 1.5


class TestSnapshotMerge:
    def _observed(self, values):
        h = Histogram(bounds=(0.001, 0.01, 0.1, 1.0))
        for value in values:
            h.observe(value)
        return h

    def test_merge_is_order_independent(self):
        """The cluster invariant: element-wise snapshot merges commute,
        so the coordinator's view never depends on worker order."""
        parts = [
            self._observed([0.0005, 0.05]),
            self._observed([0.005, 0.005, 2.0]),
            self._observed([0.5]),
        ]
        snaps = [h.snapshot() for h in parts]
        forward = Histogram(bounds=(0.001, 0.01, 0.1, 1.0))
        backward = Histogram(bounds=(0.001, 0.01, 0.1, 1.0))
        for snap in snaps:
            forward.merge_snapshot(snap)
        for snap in reversed(snaps):
            backward.merge_snapshot(snap)
        assert forward.snapshot() == backward.snapshot()
        assert forward.count == 6
        assert forward.sum == pytest.approx(sum(h.sum for h in parts))
        # The merged quantiles match a single histogram fed everything.
        single = self._observed([0.0005, 0.05, 0.005, 0.005, 2.0, 0.5])
        assert forward.percentiles() == single.percentiles()

    def test_merge_refuses_mismatched_bounds(self):
        h = Histogram(bounds=(1.0, 2.0))
        other = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(ValueError, match="different bounds"):
            h.merge_snapshot(other.snapshot())

    def test_empty_snapshot_merge_keeps_minmax_unset(self):
        h = Histogram(bounds=(1.0,))
        h.merge_snapshot(Histogram(bounds=(1.0,)).snapshot())
        assert h.count == 0
        assert h.snapshot()["min"] is None


class TestRegistry:
    def test_reregistration_returns_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "help")
        b = registry.counter("hits_total")
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x", labelnames=("b",))

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad name")

    def test_labeled_family_addressing(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", labelnames=("path", "status"))
        family.labels("/a", 200).inc()
        family.labels(path="/a", status=200).inc()
        family.labels("/b", 500).inc()
        assert family.labels("/a", "200").value == 2.0
        with pytest.raises(ValueError, match="expects labels"):
            family.labels("/a")
        with pytest.raises(ValueError, match="not both"):
            family.labels("/a", status=200)

    def test_to_json_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.histogram("h_seconds", bounds=(1.0,)).observe(0.5)
        registry.gauge("g_by", labelnames=("k",)).labels("v").set(4)
        doc = registry.to_json()
        assert doc["c_total"] == 2.0
        assert doc["h_seconds"]["count"] == 1
        assert set(doc["h_seconds"]) == {"count", "sum", "p50", "p95", "p99"}
        assert doc["g_by"] == [{"labels": {"k": "v"}, "value": 4.0}]

    def test_get_registry_is_process_global(self):
        assert get_registry() is get_registry()

    def test_default_latency_buckets_are_valid(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        Histogram(bounds=DEFAULT_LATENCY_BUCKETS)  # constructs cleanly


class TestRenderPrometheus:
    def test_full_exposition_is_valid(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "Hits.").inc(3)
        registry.gauge("repro_depth", "Depth.").set(1.5)
        family = registry.histogram(
            "repro_latency_seconds", "Latency.", labelnames=("path",),
            bounds=(0.1, 1.0),
        )
        child = family.labels("/v1/campaigns/{name}")
        child.observe(0.05)
        child.observe(0.5)
        child.observe(5.0)
        text = render_prometheus(registry)
        assert_valid_exposition(text)
        lines = text.splitlines()
        assert "# TYPE repro_hits_total counter" in lines
        assert "repro_hits_total 3" in lines
        assert "repro_depth 1.5" in lines
        # Cumulative le-buckets, the +Inf bucket, and _sum/_count series;
        # literal braces inside label values must render untouched.
        label = 'path="/v1/campaigns/{name}"'
        assert f'repro_latency_seconds_bucket{{{label},le="0.1"}} 1' in lines
        assert f'repro_latency_seconds_bucket{{{label},le="1"}} 2' in lines
        assert f'repro_latency_seconds_bucket{{{label},le="+Inf"}} 3' in lines
        assert f"repro_latency_seconds_count{{{label}}} 3" in lines

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g", labelnames=("k",)).labels('a"b\\c\nd').set(1)
        text = render_prometheus(registry)
        assert '{k="a\\"b\\\\c\\nd"}' in text
        assert_valid_exposition(text)

    def test_multi_registry_first_wins(self):
        first = MetricsRegistry()
        second = MetricsRegistry()
        first.counter("dup_total").inc(1)
        second.counter("dup_total").inc(99)
        second.counter("only_total").inc(5)
        lines = render_prometheus(first, second).splitlines()
        assert "dup_total 1" in lines
        assert "dup_total 99" not in lines
        assert "only_total 5" in lines

    def test_empty_families_are_skipped(self):
        registry = MetricsRegistry()
        registry.counter("never_used_total", labelnames=("k",))
        assert "never_used_total" not in render_prometheus(registry)
