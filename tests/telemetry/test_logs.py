"""Unit tests for structured logging: the JSON schema, the text
renderer's extras, and idempotent (re)configuration."""

import io
import json
import logging

import pytest

from repro.telemetry import configure_logging, get_logger
from repro.telemetry.logs import ROOT_LOGGER_NAME


@pytest.fixture(autouse=True)
def restore_root_logger():
    """Leave the shared ``repro`` logger exactly as we found it."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    saved = (list(root.handlers), root.level, root.propagate)
    yield
    root.handlers[:] = saved[0]
    root.setLevel(saved[1])
    root.propagate = saved[2]


def capture(log_format):
    stream = io.StringIO()
    configure_logging(log_format, stream=stream, level=logging.INFO)
    return stream


class TestJsonFormat:
    def test_record_schema_and_extras(self):
        stream = capture("json")
        get_logger("repro.test").warning(
            "slow request",
            extra={"trace_id": "00ff" * 4, "duration_seconds": 1.27},
        )
        record = json.loads(stream.getvalue())
        assert record["level"] == "WARNING"
        assert record["logger"] == "repro.test"
        assert record["message"] == "slow request"
        assert record["trace_id"] == "00ff00ff00ff00ff"
        assert record["duration_seconds"] == 1.27
        # UTC ISO-8601 with millisecond suffix.
        assert record["ts"].endswith("Z") and "T" in record["ts"]

    def test_percent_args_render_into_message(self):
        stream = capture("json")
        get_logger("repro.test").info("folded %d reports in %gs", 10, 0.5)
        assert json.loads(stream.getvalue())["message"] == "folded 10 reports in 0.5s"

    def test_unserializable_extra_falls_back_to_repr(self):
        stream = capture("json")
        get_logger("repro.test").info("x", extra={"obj": {1, 2}})
        record = json.loads(stream.getvalue())
        assert record["obj"] in ("{1, 2}", "{2, 1}")

    def test_exceptions_are_captured(self):
        stream = capture("json")
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("repro.test").exception("failed")
        record = json.loads(stream.getvalue())
        assert "ValueError: boom" in record["exception"]

    def test_one_json_object_per_line(self):
        stream = capture("json")
        log = get_logger("repro.test")
        log.info("a")
        log.info("b")
        lines = stream.getvalue().strip().splitlines()
        assert [json.loads(line)["message"] for line in lines] == ["a", "b"]


class TestTextFormat:
    def test_extras_appended_sorted(self):
        stream = capture("text")
        get_logger("repro.test").info("started", extra={"port": 8320, "host": "x"})
        line = stream.getvalue().strip()
        assert line.endswith("[host=x port=8320]")
        assert "INFO" in line and "started" in line


class TestConfigure:
    def test_reconfigure_replaces_handler_not_stacks(self):
        capture("json")
        stream = capture("text")
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert len(root.handlers) == 1
        get_logger("repro.test").info("once")
        assert len(stream.getvalue().strip().splitlines()) == 1

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="log_format"):
            configure_logging("xml")

    def test_get_logger_prefixes_foreign_names(self):
        assert get_logger("service.server").name == "repro.service.server"
        assert get_logger("repro.service").name == "repro.service"
        assert get_logger("repro").name == "repro"

    def test_level_filtering_applies(self):
        stream = io.StringIO()
        configure_logging("json", stream=stream, level=logging.WARNING)
        get_logger("repro.test").info("dropped")
        assert stream.getvalue() == ""
