"""Unit tests for span tracing: id minting, span trees, the disabled
tracer's null path, and the duration histogram hookup."""

import pytest

from repro.telemetry import MetricsRegistry, Tracer, is_trace_id, mint_trace_id
from repro.telemetry.tracing import TRACE_ID_LENGTH


class TestTraceIds:
    def test_minted_ids_are_16_hex_and_distinct(self):
        ids = {mint_trace_id() for _ in range(32)}
        assert len(ids) == 32
        for trace_id in ids:
            assert len(trace_id) == TRACE_ID_LENGTH == 16
            assert is_trace_id(trace_id)

    @pytest.mark.parametrize(
        "value",
        ["", "xyz", "0" * 15, "0" * 17, "g" * 16, 1234, None, b"00" * 8],
    )
    def test_non_ids_rejected(self, value):
        assert not is_trace_id(value)


class TestTracer:
    def test_span_tree_records_parentage_and_durations(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with tracer.span("ingest") as parent:
            trace_id = parent.trace_id
            with parent.child("decode"):
                pass
            with parent.child("fold") as fold:
                fold.set_attribute("reports", 7)
        spans = tracer.trace(trace_id)
        assert [s.name for s in spans] == ["decode", "fold", "ingest"]
        assert all(s.trace_id == trace_id for s in spans)
        assert {s.parent for s in spans} == {"ingest", None}
        assert spans[1].attributes == {"reports": 7}
        assert all(s.duration_seconds >= 0 for s in spans)
        # Durations land in the labeled registry histogram.
        family = registry.histogram(
            "repro_span_duration_seconds", labelnames=("span",)
        )
        assert family.labels("ingest").count == 1
        assert family.labels("decode").count == 1

    def test_adopted_trace_id_is_kept(self):
        tracer = Tracer()
        minted = mint_trace_id()
        with tracer.span("ingest", trace_id=minted) as span:
            assert span.trace_id == minted
        assert tracer.trace(minted)[0].name == "ingest"

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("ingest") as span:
                raise RuntimeError("boom")
        assert tracer.recent()[-1].attributes["error"] is True

    def test_record_after_the_fact(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        tracer.record("fold", 0.25, trace_id="ab" * 8, parent="ingest", reports=3)
        (span,) = tracer.trace("ab" * 8)
        assert span.duration_seconds == 0.25
        assert span.parent == "ingest"
        assert span.attributes == {"reports": 3}

    def test_ring_is_bounded(self):
        tracer = Tracer(max_finished=4)
        for index in range(10):
            tracer.record("s", 0.0, trace_id=f"{index:016x}")
        assert len(tracer.recent(limit=100)) == 4
        assert tracer.recent(limit=100)[-1].trace_id == f"{9:016x}"

    def test_disabled_tracer_is_inert(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, enabled=False)
        with tracer.span("ingest") as span:
            with span.child("fold") as child:
                child.set_attribute("k", 1)  # no-op, must not raise
        tracer.record("fold", 1.0)
        assert tracer.recent() == []
        # The family exists (registered eagerly) but records no samples.
        assert registry.to_json() == {"repro_span_duration_seconds": []}

    def test_span_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("ingest"):
            pass
        doc = tracer.recent()[-1].to_json()
        assert doc["name"] == "ingest" and doc["parent"] is None
        assert is_trace_id(doc["trace_id"])
