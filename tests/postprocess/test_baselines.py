"""Tests for the consistency baselines."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.postprocess import truncate_and_rescale, truncate_negative


class TestTruncateNegative:
    def test_clips(self):
        assert np.array_equal(
            truncate_negative(np.array([1.0, -2.0, 3.0])), [1.0, 0.0, 3.0]
        )

    def test_noop_on_nonnegative(self):
        values = np.array([0.0, 1.0, 2.0])
        assert np.array_equal(truncate_negative(values), values)


class TestTruncateAndRescale:
    def test_preserves_requested_total(self):
        result = truncate_and_rescale(np.array([5.0, -1.0, 6.0]), total=20.0)
        assert np.isclose(result.sum(), 20.0)
        assert (result >= 0).all()

    def test_defaults_to_estimate_sum(self):
        estimate = np.array([5.0, -1.0, 6.0])
        result = truncate_and_rescale(estimate)
        assert np.isclose(result.sum(), estimate.sum())

    def test_all_negative_spreads_uniformly(self):
        result = truncate_and_rescale(np.array([-1.0, -2.0]), total=10.0)
        assert np.allclose(result, [5.0, 5.0])

    def test_rejects_negative_total(self):
        with pytest.raises(WorkloadError):
            truncate_and_rescale(np.array([1.0]), total=-1.0)
