"""Tests for WNNLS post-processing (Appendix A)."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.postprocess import wnnls_from_answers, wnnls_from_data_estimate
from repro.workloads import all_range, histogram, prefix


class TestFromDataEstimate:
    def test_nonnegative_output(self):
        estimate = np.array([5.0, -2.0, 3.0, -0.5])
        result = wnnls_from_data_estimate(histogram(4), estimate)
        assert (result >= 0).all()

    def test_already_consistent_is_fixed_point(self):
        estimate = np.array([5.0, 2.0, 3.0, 0.5])
        result = wnnls_from_data_estimate(histogram(4), estimate)
        assert np.allclose(result, estimate, atol=1e-6)

    def test_histogram_projection_is_clipping(self):
        # With W = I the WNNLS solution is exactly the positive part.
        estimate = np.array([4.0, -3.0, 1.0, -1.0])
        result = wnnls_from_data_estimate(histogram(4), estimate)
        assert np.allclose(result, np.clip(estimate, 0, None), atol=1e-6)

    def test_reduces_workload_error(self, rng):
        # W x_hat should be at least as close to W x_true as W b was, in
        # expectation over noisy b near a nonneg truth.
        workload = prefix(6)
        truth = np.array([10.0, 0.0, 5.0, 0.0, 2.0, 1.0])
        improvements = []
        for _ in range(30):
            noisy = truth + rng.normal(scale=4.0, size=6)
            fixed = wnnls_from_data_estimate(workload, noisy)
            error_before = workload.error_quadratic(noisy - truth)
            error_after = workload.error_quadratic(fixed - truth)
            improvements.append(error_after <= error_before + 1e-9)
        assert np.mean(improvements) > 0.7

    def test_shape_check(self):
        with pytest.raises(WorkloadError):
            wnnls_from_data_estimate(histogram(4), np.ones(5))

    def test_works_with_implicit_workload(self):
        workload = all_range(32)
        estimate = np.random.default_rng(0).normal(size=32)
        result = wnnls_from_data_estimate(workload, estimate)
        assert (result >= 0).all()


class TestFromAnswers:
    def test_recovers_exact_answers(self):
        workload = prefix(4)
        truth = np.array([3.0, 1.0, 0.0, 2.0])
        answers = workload.matvec(truth)
        recovered = wnnls_from_answers(workload, answers)
        assert np.allclose(workload.matvec(recovered), answers, atol=1e-5)

    def test_nonnegative_even_with_negative_answers(self):
        workload = histogram(3)
        answers = np.array([-5.0, 2.0, -1.0])
        result = wnnls_from_answers(workload, answers)
        assert (result >= 0).all()
        assert np.allclose(result, [0.0, 2.0, 0.0], atol=1e-6)

    def test_matches_data_estimate_variant_when_exact(self):
        workload = prefix(5)
        estimate = np.array([2.0, -1.0, 3.0, 0.5, -0.2])
        via_answers = wnnls_from_answers(workload, workload.matvec(estimate))
        via_estimate = wnnls_from_data_estimate(workload, estimate)
        assert np.allclose(
            workload.matvec(via_answers), workload.matvec(via_estimate), atol=1e-4
        )
