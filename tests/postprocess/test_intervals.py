"""Tests for plug-in confidence intervals."""

import numpy as np
import pytest

from repro.analysis import per_user_variances, reconstruction_operator
from repro.exceptions import WorkloadError
from repro.mechanisms import randomized_response
from repro.postprocess import per_query_variances, workload_confidence_intervals
from repro.workloads import histogram, prefix


class TestPerQueryVariances:
    def test_sums_to_total_variance(self):
        # Summing per-query variances over queries must equal Theorem 3.4's
        # total variance.
        workload = prefix(5)
        strategy = randomized_response(5, 1.0)
        operator = reconstruction_operator(strategy.probabilities)
        x = np.array([10.0, 3.0, 0.0, 7.0, 5.0])
        per_query = per_query_variances(workload, strategy, operator, x)
        total = x @ per_user_variances(
            strategy.probabilities, workload.gram(), operator
        )
        assert np.isclose(per_query.sum(), total)

    def test_nonnegative(self):
        workload = histogram(4)
        strategy = randomized_response(4, 1.0)
        operator = reconstruction_operator(strategy.probabilities)
        variances = per_query_variances(
            workload, strategy, operator, np.array([5.0, 5.0, 5.0, 5.0])
        )
        assert (variances >= -1e-9).all()

    def test_rejects_negative_weights(self):
        workload = histogram(3)
        strategy = randomized_response(3, 1.0)
        operator = reconstruction_operator(strategy.probabilities)
        with pytest.raises(WorkloadError):
            per_query_variances(workload, strategy, operator, np.array([1.0, -1.0, 1.0]))

    def test_matches_empirical_variance(self, rng):
        workload = prefix(4)
        strategy = randomized_response(4, 1.0)
        operator = reconstruction_operator(strategy.probabilities)
        x = np.array([30.0, 20.0, 10.0, 40.0])
        predicted = per_query_variances(workload, strategy, operator, x)
        samples = np.array(
            [
                workload.matvec(operator @ strategy.sample_histogram(x, rng))
                for _ in range(600)
            ]
        )
        empirical = samples.var(axis=0)
        assert np.allclose(empirical, predicted, rtol=0.25)


class TestConfidenceIntervals:
    def test_structure(self, rng):
        workload = prefix(4)
        strategy = randomized_response(4, 1.0)
        operator = reconstruction_operator(strategy.probabilities)
        y = strategy.sample_histogram(np.full(4, 100.0), rng)
        result = workload_confidence_intervals(workload, strategy, operator, y)
        assert (result.lower <= result.estimates).all()
        assert (result.estimates <= result.upper).all()
        assert result.confidence == 0.95

    def test_wider_at_higher_confidence(self, rng):
        workload = histogram(4)
        strategy = randomized_response(4, 1.0)
        operator = reconstruction_operator(strategy.probabilities)
        y = strategy.sample_histogram(np.full(4, 50.0), rng)
        narrow = workload_confidence_intervals(
            workload, strategy, operator, y, confidence=0.8
        )
        wide = workload_confidence_intervals(
            workload, strategy, operator, y, confidence=0.99
        )
        assert (wide.upper - wide.lower > narrow.upper - narrow.lower).all()

    def test_rejects_bad_confidence(self, rng):
        workload = histogram(3)
        strategy = randomized_response(3, 1.0)
        operator = reconstruction_operator(strategy.probabilities)
        with pytest.raises(WorkloadError):
            workload_confidence_intervals(
                workload, strategy, operator, np.ones(3), confidence=1.5
            )

    def test_coverage_calibrated(self, rng):
        # Over repeated protocol runs, the 90% intervals should cover the
        # true answers ~90% of the time (per query).
        workload = prefix(4)
        strategy = randomized_response(4, 1.0)
        operator = reconstruction_operator(strategy.probabilities)
        x = np.array([200.0, 150.0, 100.0, 50.0])
        truth = workload.matvec(x)
        covered = []
        for _ in range(300):
            y = strategy.sample_histogram(x, rng)
            result = workload_confidence_intervals(
                workload, strategy, operator, y, confidence=0.9
            )
            covered.append((result.lower <= truth) & (truth <= result.upper))
        coverage = np.mean(covered)
        assert 0.85 <= coverage <= 0.95
