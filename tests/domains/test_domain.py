"""Tests for repro.domains."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.domains import BinaryDomain, Domain
from repro.exceptions import DomainError


class TestDomain:
    def test_size(self):
        assert Domain(5).size == 5

    def test_rejects_nonpositive_size(self):
        with pytest.raises(DomainError):
            Domain(0)

    def test_one_hot(self):
        assert np.array_equal(Domain(4).one_hot(2), [0.0, 0.0, 1.0, 0.0])

    def test_one_hot_out_of_range(self):
        with pytest.raises(DomainError):
            Domain(4).one_hot(4)

    def test_data_vector_counts(self):
        users = np.array([0, 2, 2, 3])
        assert np.array_equal(Domain(5).data_vector(users), [1, 0, 2, 1, 0])

    def test_data_vector_empty(self):
        assert np.array_equal(Domain(3).data_vector(np.array([], dtype=int)), [0, 0, 0])

    def test_data_vector_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            Domain(3).data_vector(np.array([3]))


class TestBinaryDomain:
    def test_size(self):
        assert BinaryDomain(4).size == 16

    def test_flat_equivalent(self):
        assert BinaryDomain(3).flat() == Domain(8)

    def test_rejects_nonpositive(self):
        with pytest.raises(DomainError):
            BinaryDomain(0)

    def test_rejects_huge(self):
        with pytest.raises(DomainError):
            BinaryDomain(31)

    def test_attribute_values_lsb_first(self):
        assert np.array_equal(BinaryDomain(3).attribute_values(5), [1, 0, 1])

    def test_index_of_roundtrip(self):
        domain = BinaryDomain(4)
        for user_type in range(domain.size):
            assert domain.index_of(domain.attribute_values(user_type)) == user_type

    def test_index_of_rejects_bad_shape(self):
        with pytest.raises(DomainError):
            BinaryDomain(3).index_of(np.array([0, 1]))

    def test_index_of_rejects_non_binary(self):
        with pytest.raises(DomainError):
            BinaryDomain(2).index_of(np.array([0, 2]))

    def test_all_attribute_values(self):
        table = BinaryDomain(2).all_attribute_values()
        assert np.array_equal(table, [[0, 0], [1, 0], [0, 1], [1, 1]])

    def test_hamming_table_symmetric_zero_diagonal(self):
        table = BinaryDomain(3).hamming_distance_table()
        assert np.array_equal(table, table.T)
        assert np.array_equal(np.diag(table), np.zeros(8))

    @given(st.integers(min_value=1, max_value=6))
    def test_hamming_table_matches_popcount(self, bits):
        domain = BinaryDomain(bits)
        table = domain.hamming_distance_table()
        for u in range(domain.size):
            for v in range(domain.size):
                assert table[u, v] == bin(u ^ v).count("1")
