"""Tests for ProductDomain."""

import numpy as np
import pytest

from repro.domains import BinaryDomain, ProductDomain
from repro.exceptions import DomainError


class TestProductDomain:
    def test_size(self):
        assert ProductDomain((3, 4, 2)).size == 24

    def test_flat(self):
        assert ProductDomain((3, 4)).flat().size == 12

    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            ProductDomain(())

    def test_rejects_unary_attribute(self):
        with pytest.raises(DomainError):
            ProductDomain((3, 1))

    def test_rejects_huge(self):
        with pytest.raises(DomainError):
            ProductDomain((2,) * 40)

    def test_attribute_values_mixed_radix(self):
        domain = ProductDomain((3, 4))
        # u = u0 + 3 * u1.
        assert np.array_equal(domain.attribute_values(7), [1, 2])

    def test_roundtrip(self):
        domain = ProductDomain((3, 2, 4))
        for user_type in range(domain.size):
            values = domain.attribute_values(user_type)
            assert domain.index_of(values) == user_type

    def test_index_of_rejects_bad_values(self):
        domain = ProductDomain((3, 4))
        with pytest.raises(DomainError):
            domain.index_of(np.array([3, 0]))
        with pytest.raises(DomainError):
            domain.index_of(np.array([0]))

    def test_out_of_range_type(self):
        with pytest.raises(DomainError):
            ProductDomain((3, 4)).attribute_values(12)

    def test_binary_special_case_agrees(self):
        binary = BinaryDomain(3)
        product = ProductDomain((2, 2, 2))
        assert product.size == binary.size
        for user_type in range(8):
            assert np.array_equal(
                product.attribute_values(user_type),
                binary.attribute_values(user_type),
            )
