"""Tests for Optimized Unary Encoding."""

import numpy as np
import pytest

from repro.analysis import per_user_variances
from repro.exceptions import DomainError
from repro.mechanisms import oue, rappor


class TestOue:
    def test_output_count(self):
        assert oue(4, 1.0).num_outputs == 16

    def test_columns_stochastic_and_private(self):
        strategy = oue(5, 1.0)
        assert np.allclose(strategy.probabilities.sum(axis=0), 1.0)
        assert np.isclose(strategy.realized_ratio(), np.e)

    def test_own_bit_fifty_fifty(self):
        strategy = oue(3, 1.0)
        # Marginal of bit u being set, for a type-u user, equals 1/2.
        outputs = np.arange(8)
        for user_type in range(3):
            set_mask = (outputs >> user_type) & 1
            marginal = strategy.probabilities[set_mask == 1, user_type].sum()
            assert np.isclose(marginal, 0.5)

    def test_other_bits_rarely_set(self):
        epsilon = 1.0
        strategy = oue(3, epsilon)
        outputs = np.arange(8)
        expected = 1.0 / (np.exp(epsilon) + 1.0)
        for user_type, other in ((0, 1), (1, 2), (2, 0)):
            set_mask = (outputs >> other) & 1
            marginal = strategy.probabilities[set_mask == 1, user_type].sum()
            assert np.isclose(marginal, expected)

    def test_beats_rappor_on_histogram(self):
        # The design goal of OUE: lower frequency-estimation variance than
        # symmetric RAPPOR at the same epsilon.
        size, epsilon = 6, 1.0
        gram = np.eye(size)
        oue_variance = per_user_variances(oue(size, epsilon).probabilities, gram).max()
        rappor_variance = per_user_variances(
            rappor(size, epsilon).probabilities, gram
        ).max()
        assert oue_variance < rappor_variance

    def test_guards(self):
        with pytest.raises(DomainError):
            oue(1, 1.0)
        with pytest.raises(DomainError):
            oue(30, 1.0)
