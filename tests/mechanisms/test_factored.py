"""Tests for the FactoredStrategy abstraction."""

import numpy as np
import pytest

from repro.exceptions import AllocationCapError, StochasticityError
from repro.mechanisms import FactoredStrategy, StrategyMatrix, randomized_response


def make_strategy(epsilons=(0.5, 0.7)) -> FactoredStrategy:
    return FactoredStrategy(
        tuple(
            randomized_response(size, epsilon)
            for size, epsilon in zip((3, 4), epsilons)
        )
    )


class TestStructure:
    def test_shapes_and_budget_compose(self):
        strategy = make_strategy()
        assert strategy.domain_sizes == (3, 4)
        assert strategy.output_sizes == (3, 4)
        assert strategy.domain_size == 12
        assert strategy.num_outputs == 12
        assert strategy.shape == (12, 12)
        assert strategy.epsilon == pytest.approx(1.2)

    def test_realized_ratio_multiplies(self):
        strategy = make_strategy()
        expected = np.prod(
            [factor.realized_ratio() for factor in strategy.factors]
        )
        assert strategy.realized_ratio() == pytest.approx(float(expected))

    def test_rejects_empty_and_non_strategy_factors(self):
        with pytest.raises(StochasticityError):
            FactoredStrategy(())
        with pytest.raises(StochasticityError):
            FactoredStrategy((np.eye(3),))


class TestMaterialization:
    def test_materialize_matches_kron(self):
        strategy = make_strategy()
        joint = strategy.materialize()
        expected = np.kron(
            strategy.factors[1].probabilities, strategy.factors[0].probabilities
        )
        assert np.allclose(joint.probabilities, expected)
        assert joint.epsilon == pytest.approx(strategy.epsilon)

    def test_materialize_revalidates_ldp(self):
        # The materialized joint passes StrategyMatrix's full validation —
        # a numeric double-check of the composition argument.
        joint = make_strategy().materialize()
        assert isinstance(joint, StrategyMatrix)
        assert joint.realized_ratio() <= np.exp(joint.epsilon) * (1 + 1e-9)

    def test_materialize_respects_cap(self):
        strategy = FactoredStrategy(
            (randomized_response(64, 0.5), randomized_response(64, 0.5))
        )
        with pytest.raises(AllocationCapError):
            strategy.materialize(max_entries=1000)

    def test_operator_matches_dense(self):
        strategy = make_strategy()
        dense = strategy.materialize().probabilities
        x = np.arange(12, dtype=float)
        assert np.allclose(strategy.as_operator().matvec(x), dense @ x)
        y = np.arange(12, dtype=float)[::-1].copy()
        assert np.allclose(strategy.as_operator().rmatvec(y), dense.T @ y)


class TestSampling:
    def test_attribute_responses_shape_and_range(self):
        strategy = make_strategy()
        rows = np.array([[0, 1], [2, 3], [1, 0]])
        responses = strategy.sample_attribute_responses(
            rows, np.random.default_rng(0)
        )
        assert responses.shape == (3, 2)
        assert responses[:, 0].max() < 3 and responses[:, 1].max() < 4

    def test_flatten_matches_mixed_radix(self):
        strategy = make_strategy()
        responses = np.array([[0, 0], [2, 0], [0, 1], [2, 3]])
        assert np.array_equal(
            strategy.flatten_responses(responses), np.array([0, 2, 3, 11])
        )

    def test_flattened_distribution_matches_joint(self):
        # Chi-square-free check: empirical flat histogram tracks the joint
        # strategy's column for a fixed input.
        strategy = make_strategy()
        rows = np.tile([[1, 2]], (20000, 1))
        responses = strategy.sample_attribute_responses(
            rows, np.random.default_rng(3)
        )
        flat = strategy.flatten_responses(responses)
        empirical = np.bincount(flat, minlength=12) / 20000.0
        joint_column = strategy.materialize().probabilities[:, 1 + 2 * 3]
        assert np.max(np.abs(empirical - joint_column)) < 0.02

    def test_rejects_bad_row_shape(self):
        with pytest.raises(StochasticityError):
            make_strategy().sample_attribute_responses(
                np.array([0, 1]), np.random.default_rng(0)
            )


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        strategy = make_strategy()
        path = tmp_path / "factored.npz"
        strategy.save(path)
        restored = FactoredStrategy.load(path)
        assert restored.domain_sizes == strategy.domain_sizes
        assert restored.epsilon == pytest.approx(strategy.epsilon)
        for left, right in zip(restored.factors, strategy.factors):
            assert np.array_equal(left.probabilities, right.probabilities)

    def test_load_rejects_foreign_payloads(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, histogram=np.zeros(4))
        with pytest.raises(StochasticityError):
            FactoredStrategy.load(path)

    def test_reconstruction_factors_cached_and_read_only(self):
        strategy = make_strategy()
        first = strategy.reconstruction_factors()
        second = strategy.reconstruction_factors()
        assert all(a is b for a, b in zip(first, second))
        with pytest.raises(ValueError):
            first[0][0, 0] = 1.0
