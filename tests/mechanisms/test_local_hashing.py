"""Tests for Optimized Local Hashing."""

import numpy as np
import pytest

from repro.analysis import per_user_variances
from repro.exceptions import DomainError
from repro.mechanisms import (
    affine_hashes,
    hadamard_response,
    olh,
    optimal_bucket_count,
)


class TestBucketCount:
    def test_formula(self):
        assert optimal_bucket_count(1.0) == round(np.e + 1)

    def test_minimum_two(self):
        assert optimal_bucket_count(0.01) >= 2

    def test_grows_with_epsilon(self):
        assert optimal_bucket_count(3.0) > optimal_bucket_count(1.0)


class TestAffineHashes:
    def test_shape_and_range(self):
        table = affine_hashes(20, 4, 7, seed=0)
        assert table.shape == (7, 20)
        assert table.min() >= 0
        assert table.max() < 4

    def test_deterministic(self):
        assert np.array_equal(
            affine_hashes(10, 3, 5, seed=1), affine_hashes(10, 3, 5, seed=1)
        )

    def test_roughly_balanced(self):
        table = affine_hashes(64, 4, 200, seed=2)
        occupancy = np.bincount(table.ravel(), minlength=4) / table.size
        assert np.allclose(occupancy, 0.25, atol=0.05)


class TestOlh:
    def test_output_count(self):
        strategy = olh(8, 1.0, num_hashes=10)
        assert strategy.num_outputs == 10 * optimal_bucket_count(1.0)

    def test_columns_stochastic_and_private(self):
        strategy = olh(10, 1.0)
        assert np.allclose(strategy.probabilities.sum(axis=0), 1.0)
        assert strategy.realized_ratio() <= np.e * (1 + 1e-9)

    def test_competitive_with_hadamard_on_histogram(self):
        # OLH is near-optimal for frequency estimation; it should land in
        # the same variance ballpark as Hadamard response.
        size, epsilon = 16, 1.0
        gram = np.eye(size)
        olh_variance = per_user_variances(
            olh(size, epsilon, num_hashes=64, seed=0).probabilities, gram
        ).max()
        hadamard_variance = per_user_variances(
            hadamard_response(size, epsilon).probabilities, gram
        ).max()
        assert olh_variance < 2.0 * hadamard_variance

    def test_more_hashes_reduce_variance_spread(self):
        # With few hashes some types collide badly; more hashes smooth the
        # worst-case over types.
        size, epsilon = 12, 1.0
        gram = np.eye(size)
        few = per_user_variances(
            olh(size, epsilon, num_hashes=3, seed=0).probabilities, gram
        )
        many = per_user_variances(
            olh(size, epsilon, num_hashes=96, seed=0).probabilities, gram
        )
        assert many.max() / many.min() < few.max() / few.min() + 1e-9

    def test_guards(self):
        with pytest.raises(DomainError):
            olh(1, 1.0)
        with pytest.raises(DomainError):
            olh(8, 1.0, num_buckets=1)
        with pytest.raises(DomainError):
            olh(8, 1.0, num_hashes=0)
