"""Tests for the distributed Matrix Mechanism."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.mechanisms import DistributedMatrixMechanism, square_root_strategy
from repro.mechanisms.matrix_mechanism import (
    local_sensitivity,
    per_coordinate_noise_variance,
)
from repro.workloads import histogram, parity, prefix


class TestSquareRootStrategy:
    def test_gram_reproduces_sqrt(self):
        gram = prefix(6).gram()
        strategy = square_root_strategy(gram)
        eigenvalues, eigenvectors = np.linalg.eigh(gram)
        sqrt_gram = (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.T
        assert np.allclose(strategy.T @ strategy, sqrt_gram, atol=1e-8)

    def test_rank_reduction(self):
        workload = parity(4, 2)  # rank 10 over n = 16
        strategy = square_root_strategy(workload.gram())
        assert strategy.shape == (10, 16)

    def test_rejects_zero_gram(self):
        with pytest.raises(OptimizationError):
            square_root_strategy(np.zeros((3, 3)))


class TestSensitivity:
    def test_identity_l1_diameter(self):
        assert local_sensitivity(np.eye(5), norm=1) == 2.0

    def test_identity_l2_diameter(self):
        assert np.isclose(local_sensitivity(np.eye(5), norm=2), np.sqrt(2.0))

    def test_l2_exact_pairwise(self):
        strategy = np.array([[1.0, 0.0, 3.0], [0.0, 2.0, 0.0]])
        distances = [
            np.linalg.norm(strategy[:, a] - strategy[:, b])
            for a in range(3)
            for b in range(3)
        ]
        assert np.isclose(local_sensitivity(strategy, norm=2), max(distances))

    def test_constant_columns_zero_l2(self):
        strategy = np.ones((3, 4))
        assert local_sensitivity(strategy, norm=2) <= 1e-9


class TestNoiseVariance:
    def test_l1_laplace(self):
        assert per_coordinate_noise_variance(10, 2.0, norm=1) == 2.0 / 4.0

    def test_l2_knorm_grows_with_rows(self):
        small = per_coordinate_noise_variance(5, 1.0, norm=2)
        large = per_coordinate_noise_variance(50, 1.0, norm=2)
        assert large > small

    def test_sensitivity_scaling(self):
        base = per_coordinate_noise_variance(5, 1.0, norm=1, sensitivity=1.0)
        scaled = per_coordinate_noise_variance(5, 1.0, norm=1, sensitivity=3.0)
        assert np.isclose(scaled, 9.0 * base)


class TestMechanism:
    def test_rejects_bad_norm(self):
        with pytest.raises(OptimizationError):
            DistributedMatrixMechanism(norm=3)

    def test_per_user_variances_constant(self):
        mechanism = DistributedMatrixMechanism(norm=1)
        t = mechanism.per_user_variances(prefix(8), 1.0)
        assert np.allclose(t, t[0])

    def test_variance_scales_inverse_epsilon_squared(self):
        mechanism = DistributedMatrixMechanism(norm=1)
        workload = histogram(8)
        low = mechanism.worst_case_variance(workload, 0.5)
        high = mechanism.worst_case_variance(workload, 1.0)
        assert np.isclose(low / high, 4.0)

    def test_l2_benefits_from_low_rank(self):
        # The K-norm noise grows with the strategy row count, so the
        # rank-reduced strategy matters on low-rank workloads.
        mechanism = DistributedMatrixMechanism(norm=2)
        workload = parity(4, 2)
        variance = mechanism.worst_case_variance(workload, 1.0)
        strategy = mechanism.strategy_for(workload)
        assert strategy.shape[0] == 10
        assert np.isfinite(variance)

    def test_run_unbiased(self, rng):
        mechanism = DistributedMatrixMechanism(norm=1)
        workload = histogram(4)
        x = np.array([50.0, 10.0, 30.0, 10.0])
        estimates = np.mean(
            [mechanism.run(workload, x, 5.0, rng) for _ in range(200)], axis=0
        )
        assert np.allclose(estimates, x, atol=2.0)

    def test_run_l2_unbiased(self, rng):
        mechanism = DistributedMatrixMechanism(norm=2)
        workload = histogram(4)
        x = np.array([25.0, 25.0, 25.0, 25.0])
        estimates = np.mean(
            [mechanism.run(workload, x, 5.0, rng) for _ in range(200)], axis=0
        )
        assert np.allclose(estimates, x, atol=4.0)

    def test_sample_noise_l2_radius_distribution(self, rng):
        mechanism = DistributedMatrixMechanism(norm=2)
        radii = [
            np.linalg.norm(mechanism.sample_noise(6, 2.0, rng)) for _ in range(2000)
        ]
        # Radius ~ Gamma(k, 1/eps): mean k/eps = 3.
        assert np.isclose(np.mean(radii), 3.0, atol=0.15)
