"""Tests for the hierarchical mechanism."""

import numpy as np
import pytest

from repro.exceptions import DomainError
from repro.mechanisms import hierarchical, level_cells
from repro.workloads import all_range, histogram, prefix


class TestLevelCells:
    def test_power_of_branching(self):
        assert level_cells(16, 4) == [16, 4]

    def test_uneven_domain(self):
        assert level_cells(10, 4) == [10, 3]

    def test_tiny_domain_single_level(self):
        assert level_cells(2, 4) == [2]

    def test_binary_branching(self):
        assert level_cells(8, 2) == [8, 4, 2]


class TestHierarchical:
    def test_output_count_is_total_cells(self):
        strategy = hierarchical(16, 1.0, branching=4)
        assert strategy.num_outputs == 16 + 4

    def test_columns_stochastic_and_private(self):
        strategy = hierarchical(20, 1.0)
        assert np.allclose(strategy.probabilities.sum(axis=0), 1.0)
        assert strategy.realized_ratio() <= np.exp(1.0) * (1 + 1e-9)

    def test_adjacent_types_share_coarse_behaviour(self):
        # Types 0 and 1 are in the same level-1 cell, so their columns agree
        # on every coarse-level row.
        strategy = hierarchical(16, 1.0, branching=4)
        coarse = strategy.probabilities[16:, :]
        assert np.allclose(coarse[:, 0], coarse[:, 1])
        assert not np.allclose(coarse[:, 0], coarse[:, 4])

    def test_full_rank_for_range_answering(self):
        from repro.analysis import is_factorizable

        strategy = hierarchical(16, 1.0)
        for workload in (histogram(16), prefix(16), all_range(16)):
            assert is_factorizable(workload.gram(), strategy.probabilities)

    def test_better_than_rr_on_prefix(self):
        # The design goal: hierarchy helps on range-style workloads at
        # moderately large domains.
        from repro.analysis import per_user_variances

        n, epsilon = 64, 1.0
        workload = prefix(n)
        from repro.mechanisms import randomized_response

        hier = per_user_variances(
            hierarchical(n, epsilon).probabilities, workload.gram()
        ).max()
        flat = per_user_variances(
            randomized_response(n, epsilon).probabilities, workload.gram()
        ).max()
        assert hier < flat

    def test_rejects_bad_branching(self):
        with pytest.raises(DomainError):
            hierarchical(8, 1.0, branching=1)

    def test_rejects_tiny_domain(self):
        with pytest.raises(DomainError):
            hierarchical(1, 1.0)
