"""Tests for the Hadamard response encoding (Table 1)."""

import numpy as np
import pytest

from repro.exceptions import DomainError
from repro.linalg import hadamard_matrix, next_power_of_two
from repro.mechanisms import hadamard_response


class TestHadamardResponse:
    @pytest.mark.parametrize("size,expected", [(3, 4), (4, 8), (7, 8), (8, 16), (15, 16)])
    def test_output_count(self, size, expected):
        assert hadamard_response(size, 1.0).num_outputs == expected
        assert next_power_of_two(size + 1) == expected

    def test_columns_stochastic_and_private(self):
        strategy = hadamard_response(6, 1.5)
        assert np.allclose(strategy.probabilities.sum(axis=0), 1.0)
        assert np.isclose(strategy.realized_ratio(), np.exp(1.5))

    def test_table1_structure(self):
        epsilon, size = 1.0, 5
        strategy = hadamard_response(size, epsilon)
        order = strategy.num_outputs
        hadamard = hadamard_matrix(order)
        boost = np.exp(epsilon)
        normalizer = order / 2 * (boost + 1)
        for user_type in range(size):
            column = strategy.probabilities[:, user_type]
            signs = hadamard[:, user_type + 1]
            assert np.allclose(
                column, np.where(signs > 0, boost, 1.0) / normalizer
            )

    def test_two_probability_levels(self):
        strategy = hadamard_response(4, 1.0)
        assert np.unique(np.round(strategy.probabilities, 12)).size == 2

    def test_balanced_boosted_outputs(self):
        # Each user type boosts exactly half of the outputs.
        strategy = hadamard_response(7, 2.0)
        boosted = strategy.probabilities > strategy.probabilities.min() * 1.5
        assert np.all(boosted.sum(axis=0) == strategy.num_outputs // 2)

    def test_rejects_tiny_domain(self):
        with pytest.raises(DomainError):
            hadamard_response(1, 1.0)
