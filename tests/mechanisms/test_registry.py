"""Tests for the mechanism registry."""

import pytest

from repro.exceptions import ReproError
from repro.mechanisms import by_name, paper_baselines


class TestPaperBaselines:
    def test_six_mechanisms_in_legend_order(self):
        names = [mechanism.name for mechanism in paper_baselines()]
        assert names == [
            "Randomized Response",
            "Hadamard",
            "Hierarchical",
            "Fourier",
            "Matrix Mechanism (L1)",
            "Matrix Mechanism (L2)",
        ]

    def test_fresh_instances(self):
        assert paper_baselines()[0] is not paper_baselines()[0]


class TestByName:
    @pytest.mark.parametrize(
        "name",
        [
            "Randomized Response",
            "Hadamard",
            "Hierarchical",
            "Fourier",
            "RAPPOR",
            "Subset Selection",
            "Matrix Mechanism (L1)",
            "Matrix Mechanism (L2)",
            "Gaussian",
        ],
    )
    def test_known_names_resolve(self, name):
        assert by_name(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            by_name("Wavelet")

    def test_resolved_mechanism_is_usable(self):
        from repro.workloads import histogram

        mechanism = by_name("Hadamard")
        assert mechanism.sample_complexity(histogram(8), 1.0) > 0
