"""Tests for the Gaussian mechanism extension."""

import numpy as np
import pytest

from repro.exceptions import PrivacyViolationError
from repro.mechanisms import DistributedMatrixMechanism, GaussianMechanism, gaussian_sigma
from repro.workloads import histogram, prefix


class TestSigma:
    def test_decreases_with_epsilon(self):
        assert gaussian_sigma(2.0) < gaussian_sigma(0.5)

    def test_increases_with_smaller_delta(self):
        assert gaussian_sigma(1.0, delta=1e-9) > gaussian_sigma(1.0, delta=1e-3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(PrivacyViolationError):
            gaussian_sigma(0.0)
        with pytest.raises(PrivacyViolationError):
            gaussian_sigma(1.0, delta=1.5)


class TestGaussianMechanism:
    def test_per_user_variance_formula(self):
        mechanism = GaussianMechanism(delta=1e-6)
        workload = prefix(8)
        t = mechanism.per_user_variances(workload, 1.0)
        expected = gaussian_sigma(1.0, 1e-6) ** 2 * workload.frobenius_norm_squared()
        assert np.allclose(t, expected)

    def test_run_unbiased(self, rng):
        mechanism = GaussianMechanism()
        workload = histogram(4)
        x = np.array([40.0, 30.0, 20.0, 10.0])
        runs = 300
        estimates = np.mean(
            [mechanism.run(workload, x, 8.0, rng) for _ in range(runs)], axis=0
        )
        # Mean of `runs` draws with per-run sd sigma * sqrt(N); allow ~5 sds.
        tolerance = 5 * gaussian_sigma(8.0) * np.sqrt(x.sum() / runs)
        assert np.allclose(estimates, x, atol=tolerance)

    def test_dominated_by_l2_matrix_mechanism(self):
        # The claim the paper uses to omit Gaussian from its figures.
        gaussian = GaussianMechanism(delta=1e-6)
        l2 = DistributedMatrixMechanism(norm=2)
        workload = histogram(32)
        for epsilon in (0.5, 1.0, 2.0):
            assert l2.sample_complexity(workload, epsilon) < float("inf")
            # At equal eps the pure mechanism pays more noise per row, but the
            # Gaussian one is only (eps, delta)-private; compare at delta=1e-6.
            assert np.isfinite(gaussian.sample_complexity(workload, epsilon))
