"""Tests for the subset selection encoding (Table 1)."""

import numpy as np
import pytest
from scipy.special import comb

from repro.exceptions import DomainError
from repro.mechanisms import recommended_subset_size, subset_selection


class TestRecommendedSize:
    def test_formula(self):
        assert recommended_subset_size(16, 1.0) == round(16 / (np.e + 1))

    def test_at_least_one(self):
        assert recommended_subset_size(2, 5.0) == 1

    def test_shrinks_with_epsilon(self):
        assert recommended_subset_size(100, 3.0) < recommended_subset_size(100, 0.5)


class TestSubsetSelection:
    def test_output_count(self):
        strategy = subset_selection(6, 1.0, subset_size=2)
        assert strategy.num_outputs == comb(6, 2, exact=True)

    def test_columns_stochastic_and_private(self):
        strategy = subset_selection(7, 1.0)
        assert np.allclose(strategy.probabilities.sum(axis=0), 1.0)
        assert np.isclose(strategy.realized_ratio(), np.exp(1.0))

    def test_table1_structure(self):
        epsilon, size, d = 1.0, 5, 2
        strategy = subset_selection(size, epsilon, subset_size=d)
        boost = np.exp(epsilon)
        normalizer = boost * comb(size - 1, d - 1, exact=True) + comb(
            size - 1, d, exact=True
        )
        from itertools import combinations

        for row, subset in enumerate(combinations(range(size), d)):
            for user_type in range(size):
                expected = (boost if user_type in subset else 1.0) / normalizer
                assert np.isclose(strategy.probabilities[row, user_type], expected)

    def test_two_probability_levels(self):
        strategy = subset_selection(6, 1.0)
        assert np.unique(np.round(strategy.probabilities, 12)).size == 2

    def test_guard_on_huge_output_space(self):
        with pytest.raises(DomainError):
            subset_selection(40, 1.0, subset_size=15)

    def test_rejects_bad_subset_size(self):
        with pytest.raises(DomainError):
            subset_selection(5, 1.0, subset_size=0)
        with pytest.raises(DomainError):
            subset_selection(5, 1.0, subset_size=6)
