"""Tests for StrategyMatrix and the mixture combinator."""

import numpy as np
import pytest

from repro.exceptions import PrivacyViolationError, StochasticityError
from repro.mechanisms import StrategyMatrix, randomized_response, stack_strategies


class TestValidation:
    def test_accepts_valid_strategy(self):
        strategy = randomized_response(4, 1.0)
        assert strategy.shape == (4, 4)

    def test_rejects_non_stochastic(self):
        matrix = np.full((2, 2), 0.4)
        with pytest.raises(StochasticityError):
            StrategyMatrix(matrix, 1.0)

    def test_rejects_negative_entries(self):
        matrix = np.array([[1.2, 0.5], [-0.2, 0.5]])
        with pytest.raises(StochasticityError):
            StrategyMatrix(matrix, 1.0)

    def test_rejects_privacy_violation(self):
        matrix = np.array([[0.9, 0.1], [0.1, 0.9]])  # ratio 9 > e
        with pytest.raises(PrivacyViolationError):
            StrategyMatrix(matrix, 1.0)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(PrivacyViolationError):
            StrategyMatrix(np.full((2, 2), 0.5), 0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(StochasticityError):
            StrategyMatrix(np.full(4, 0.25), 1.0)

    def test_validate_false_skips_checks(self):
        matrix = np.array([[0.9, 0.1], [0.1, 0.9]])
        strategy = StrategyMatrix(matrix, 1.0, validate=False)
        assert strategy.realized_ratio() == 9.0

    def test_error_message_contains_numbers(self):
        matrix = np.array([[0.9, 0.1], [0.1, 0.9]])
        with pytest.raises(PrivacyViolationError, match="ratio"):
            StrategyMatrix(matrix, 1.0)


class TestStructure:
    def test_row_sums(self):
        strategy = randomized_response(3, 1.0)
        assert np.allclose(strategy.row_sums(), np.ones(3))

    def test_condensed_drops_dead_rows(self):
        matrix = np.array([[0.5, 0.5], [0.0, 0.0], [0.5, 0.5]])
        strategy = StrategyMatrix(matrix, 1.0)
        condensed = strategy.condensed()
        assert condensed.shape == (2, 2)

    def test_condensed_noop_when_all_live(self):
        strategy = randomized_response(3, 1.0)
        assert strategy.condensed() is strategy


class TestSampling:
    def test_sample_response_in_range(self, rng):
        strategy = randomized_response(5, 2.0)
        for user_type in range(5):
            assert 0 <= strategy.sample_response(user_type, rng) < 5

    def test_sample_histogram_total(self, rng):
        strategy = randomized_response(4, 1.0)
        x = np.array([5.0, 0.0, 3.0, 2.0])
        histogram = strategy.sample_histogram(x, rng)
        assert histogram.sum() == 10
        assert (histogram >= 0).all()

    def test_sample_histogram_shape_check(self, rng):
        strategy = randomized_response(4, 1.0)
        with pytest.raises(StochasticityError):
            strategy.sample_histogram(np.ones(3), rng)

    def test_high_epsilon_mostly_truthful(self, rng):
        strategy = randomized_response(4, 8.0)
        histogram = strategy.sample_histogram(np.array([0, 1000, 0, 0]), rng)
        assert histogram[1] > 900

    def test_empirical_frequencies_match_column(self, rng):
        strategy = randomized_response(3, 1.0)
        histogram = strategy.sample_histogram(np.array([0, 50_000, 0]), rng)
        frequencies = histogram / histogram.sum()
        assert np.allclose(frequencies, strategy.probabilities[:, 1], atol=0.01)


class TestStackStrategies:
    def test_uniform_mixture_valid(self):
        rr = randomized_response(4, 1.0).probabilities
        stacked = stack_strategies([(0.5, rr), (0.5, rr)], 1.0, name="Mix")
        assert stacked.shape == (8, 4)
        assert np.allclose(stacked.probabilities.sum(axis=0), 1.0)

    def test_rejects_bad_weights(self):
        rr = randomized_response(3, 1.0).probabilities
        with pytest.raises(StochasticityError):
            stack_strategies([(0.7, rr), (0.7, rr)], 1.0, name="Bad")

    def test_mixture_preserves_privacy_ratio(self):
        rr = randomized_response(3, 1.0).probabilities
        stacked = stack_strategies([(0.3, rr), (0.7, rr)], 1.0, name="Mix")
        assert stacked.realized_ratio() <= np.exp(1.0) * (1 + 1e-9)
