"""Tests for the Fourier mechanism."""

import numpy as np
import pytest

from repro.analysis import is_factorizable
from repro.exceptions import DomainError
from repro.mechanisms import fourier
from repro.workloads import histogram, k_way_marginals, parity


class TestFourier:
    def test_output_count_full(self):
        # All non-empty subsets, two outputs each.
        strategy = fourier(8, 1.0)
        assert strategy.num_outputs == 2 * 7

    def test_output_count_degree_limited(self):
        strategy = fourier(16, 1.0, degree=2)
        assert strategy.num_outputs == 2 * (4 + 6)

    def test_columns_stochastic_and_private(self):
        strategy = fourier(16, 1.2)
        assert np.allclose(strategy.probabilities.sum(axis=0), 1.0)
        assert np.isclose(strategy.realized_ratio(), np.exp(1.2))

    def test_block_structure_follows_characters(self):
        epsilon = 1.0
        strategy = fourier(4, epsilon)
        boost = np.exp(epsilon)
        high = boost / (boost + 1) / 3  # weight 1/3 per mask
        low = 1 / (boost + 1) / 3
        # First block is the mask {attribute 0}: chi(u) = +1 for u in {0, 2}.
        first_row = strategy.probabilities[0]
        assert np.allclose(first_row, [high, low, high, low])

    def test_full_degree_answers_any_workload(self):
        strategy = fourier(16, 1.0)
        assert is_factorizable(histogram(16).gram(), strategy.probabilities)

    def test_degree_limited_answers_matching_workloads_only(self):
        strategy = fourier(16, 1.0, degree=2)
        two_way = k_way_marginals(4, 2)
        assert is_factorizable(two_way.gram(), strategy.probabilities)
        assert not is_factorizable(histogram(16).gram(), strategy.probabilities)

    def test_degree_limited_beats_full_on_low_order_workload(self):
        from repro.analysis import per_user_variances

        workload = parity(4, 2)
        full = per_user_variances(fourier(16, 1.0).probabilities, workload.gram()).max()
        limited = per_user_variances(
            fourier(16, 1.0, degree=2).probabilities, workload.gram()
        ).max()
        assert limited < full

    def test_rejects_non_power_of_two(self):
        with pytest.raises(DomainError):
            fourier(12, 1.0)

    def test_rejects_bad_degree(self):
        with pytest.raises(DomainError):
            fourier(8, 1.0, degree=0)
        with pytest.raises(DomainError):
            fourier(8, 1.0, degree=4)

    def test_name_reflects_degree(self):
        assert fourier(8, 1.0).name == "Fourier"
        assert "deg=2" in fourier(8, 1.0, degree=2).name
