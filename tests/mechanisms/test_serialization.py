"""Tests for strategy matrix save/load."""

import numpy as np
import pytest

from repro.exceptions import PrivacyViolationError
from repro.mechanisms import StrategyMatrix, hierarchical, randomized_response


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        strategy = hierarchical(12, 1.3)
        path = tmp_path / "strategy.npz"
        strategy.save(path)
        loaded = StrategyMatrix.load(path)
        assert np.array_equal(loaded.probabilities, strategy.probabilities)
        assert loaded.epsilon == strategy.epsilon
        assert loaded.name == strategy.name

    def test_loaded_strategy_usable(self, tmp_path, rng):
        strategy = randomized_response(4, 1.0)
        path = tmp_path / "rr.npz"
        strategy.save(path)
        loaded = StrategyMatrix.load(path)
        histogram = loaded.sample_histogram(np.array([5.0, 5.0, 5.0, 5.0]), rng)
        assert histogram.sum() == 20

    def test_tampered_file_rejected(self, tmp_path):
        strategy = randomized_response(4, 1.0)
        path = tmp_path / "rr.npz"
        strategy.save(path)
        with np.load(path) as archive:
            probabilities = archive["probabilities"].copy()
            name = archive["name"]
        probabilities[0, 0] = 0.999  # break stochasticity / privacy
        probabilities[1:, 0] = 0.001 / 3
        np.savez_compressed(
            path,
            probabilities=probabilities,
            epsilon=np.asarray(1.0),
            name=name,
        )
        with pytest.raises(PrivacyViolationError):
            StrategyMatrix.load(path)

    def test_optimized_strategy_roundtrip(self, tmp_path):
        from repro.optimization import OptimizerConfig, optimize_strategy
        from repro.workloads import prefix

        result = optimize_strategy(
            prefix(5), 1.0, OptimizerConfig(num_iterations=40, seed=0)
        )
        path = tmp_path / "optimized.npz"
        result.strategy.save(path)
        loaded = StrategyMatrix.load(path)
        assert np.array_equal(loaded.probabilities, result.strategy.probabilities)
