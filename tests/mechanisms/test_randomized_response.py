"""Tests for randomized response (Example 2.7 / 3.3)."""

import numpy as np
import pytest

from repro.analysis import (
    per_user_variances,
    randomized_response_variance,
    reconstruction_operator,
)
from repro.exceptions import DomainError
from repro.mechanisms import randomized_response, randomized_response_inverse


class TestEncoding:
    def test_table1_structure(self):
        epsilon = 1.5
        strategy = randomized_response(4, epsilon)
        boost = np.exp(epsilon)
        normalizer = boost + 3
        assert np.allclose(np.diag(strategy.probabilities), boost / normalizer)
        off_diagonal = strategy.probabilities[~np.eye(4, dtype=bool)]
        assert np.allclose(off_diagonal, 1.0 / normalizer)

    def test_exactly_achieves_epsilon(self):
        strategy = randomized_response(6, 0.7)
        assert np.isclose(strategy.realized_ratio(), np.exp(0.7))

    def test_doubly_stochastic(self):
        strategy = randomized_response(5, 1.0)
        assert np.allclose(strategy.probabilities.sum(axis=0), 1.0)
        assert np.allclose(strategy.probabilities.sum(axis=1), 1.0)

    def test_rejects_tiny_domain(self):
        with pytest.raises(DomainError):
            randomized_response(1, 1.0)


class TestInverse:
    @pytest.mark.parametrize("size,epsilon", [(3, 0.5), (5, 1.0), (8, 2.0)])
    def test_closed_form_inverse(self, size, epsilon):
        strategy = randomized_response(size, epsilon)
        inverse = randomized_response_inverse(size, epsilon)
        assert np.allclose(inverse @ strategy.probabilities, np.eye(size))

    def test_theorem_3_10_recovers_classical_estimator(self):
        # D_Q = I for RR, so the optimal reconstruction is exactly Q^{-1}
        # (Example 3.3).
        strategy = randomized_response(6, 1.0)
        operator = reconstruction_operator(strategy.probabilities)
        assert np.allclose(operator, randomized_response_inverse(6, 1.0), atol=1e-8)


class TestVarianceClosedForm:
    @pytest.mark.parametrize("size,epsilon", [(4, 0.5), (8, 1.0), (16, 2.0)])
    def test_example_3_7(self, size, epsilon):
        # Worst-case = average-case variance on Histogram (Example 3.7).
        strategy = randomized_response(size, epsilon)
        t = per_user_variances(strategy.probabilities, np.eye(size))
        expected = randomized_response_variance(size, epsilon)
        assert np.allclose(t, expected)

    def test_variance_decreases_with_epsilon(self):
        low = randomized_response_variance(8, 0.5)
        high = randomized_response_variance(8, 2.0)
        assert high < low
