"""Tests for the Mechanism comparison interface and FactorizationMechanism."""

import numpy as np
import pytest

from repro.exceptions import FactorizationError
from repro.mechanisms import (
    FactorizationMechanism,
    StrategyMechanism,
    fourier,
    randomized_response,
)
from repro.workloads import histogram, parity, prefix


class TestStrategyMechanism:
    def test_caches_per_domain_and_epsilon(self):
        mechanism = StrategyMechanism("RR", randomized_response)
        first = mechanism.strategy_for(histogram(8), 1.0)
        second = mechanism.strategy_for(prefix(8), 1.0)
        assert first is second  # same (n, eps) -> shared strategy
        third = mechanism.strategy_for(histogram(8), 2.0)
        assert third is not first

    def test_sample_complexity_positive_and_finite(self):
        mechanism = StrategyMechanism("RR", randomized_response)
        value = mechanism.sample_complexity(prefix(8), 1.0)
        assert 0 < value < np.inf

    def test_infeasible_workload_reports_infinity(self):
        limited = StrategyMechanism(
            "Fourier(deg=1)", lambda n, eps: fourier(n, eps, degree=1)
        )
        assert limited.sample_complexity(histogram(8), 1.0) == np.inf

    def test_feasible_low_rank_workload(self):
        limited = StrategyMechanism(
            "Fourier(deg=2)", lambda n, eps: fourier(n, eps, degree=2)
        )
        assert limited.sample_complexity(parity(3, 2), 1.0) < np.inf

    def test_worst_at_least_average(self):
        mechanism = StrategyMechanism("RR", randomized_response)
        workload = prefix(8)
        worst = mechanism.worst_case_variance(workload, 1.0)
        average = mechanism.average_case_variance(workload, 1.0)
        assert worst >= average - 1e-9

    def test_data_dependent_at_most_worst_case(self, rng):
        mechanism = StrategyMechanism("RR", randomized_response)
        workload = prefix(8)
        distribution = rng.dirichlet(np.ones(8))
        data_dependent = mechanism.sample_complexity_on_distribution(
            workload, 1.0, distribution
        )
        assert data_dependent <= mechanism.sample_complexity(workload, 1.0) + 1e-9

    def test_run_produces_estimates(self, rng):
        mechanism = StrategyMechanism("RR", randomized_response)
        estimates = mechanism.run(prefix(4), np.array([5.0, 5.0, 5.0, 5.0]), 1.0, rng)
        assert estimates.shape == (4,)


class TestFactorizationMechanism:
    def test_domain_mismatch_rejected(self):
        with pytest.raises(FactorizationError):
            FactorizationMechanism(histogram(5), randomized_response(4, 1.0))

    def test_infeasible_pair_rejected(self):
        limited = fourier(8, 1.0, degree=1)
        with pytest.raises(FactorizationError):
            FactorizationMechanism(histogram(8), limited)

    def test_operator_shape_validated(self):
        strategy = randomized_response(4, 1.0)
        with pytest.raises(FactorizationError):
            FactorizationMechanism(histogram(4), strategy, operator=np.ones((4, 5)))

    def test_reconstruction_matrix_factorizes_workload(self):
        workload = prefix(5)
        strategy = randomized_response(5, 1.0)
        mechanism = FactorizationMechanism(workload, strategy)
        v = mechanism.reconstruction_matrix()
        assert np.allclose(v @ strategy.probabilities, workload.matrix, atol=1e-8)

    def test_estimates_unbiased_in_expectation(self):
        # E[V y] = V Q x = W x exactly, so averaging the exact expectation:
        workload = prefix(4)
        strategy = randomized_response(4, 1.0)
        mechanism = FactorizationMechanism(workload, strategy)
        x = np.array([7.0, 1.0, 2.0, 0.0])
        expected_y = strategy.probabilities @ x
        assert np.allclose(
            mechanism.estimate_workload(expected_y), workload.matvec(x), atol=1e-8
        )

    def test_run_end_to_end(self, rng):
        workload = histogram(4)
        strategy = randomized_response(4, 2.0)
        mechanism = FactorizationMechanism(workload, strategy)
        x = np.array([100.0, 50.0, 25.0, 25.0])
        average = np.mean([mechanism.run(x, rng) for _ in range(200)], axis=0)
        assert np.allclose(average, x, atol=6.0)
