"""Tests for the RAPPOR encoding (Table 1)."""

import numpy as np
import pytest

from repro.exceptions import DomainError
from repro.linalg.bits import popcount
from repro.mechanisms import MAX_RAPPOR_DOMAIN, rappor


class TestRappor:
    def test_output_count(self):
        assert rappor(4, 1.0).num_outputs == 16

    def test_columns_stochastic_and_private(self):
        strategy = rappor(5, 1.0)
        assert np.allclose(strategy.probabilities.sum(axis=0), 1.0)
        assert strategy.realized_ratio() <= np.exp(1.0) * (1 + 1e-9)

    def test_table1_proportionality(self):
        # Q[o, u] proportional to exp(eps/2)^(n - ||o - e_u||_1).
        epsilon, size = 1.2, 4
        strategy = rappor(size, epsilon)
        outputs = np.arange(16)
        one_hot = np.array([1 << u for u in range(size)])
        distances = popcount(outputs[:, None] ^ one_hot[None, :])
        expected = np.exp(epsilon / 2.0) ** (size - distances)
        expected = expected / expected.sum(axis=0)
        assert np.allclose(strategy.probabilities, expected)

    def test_most_likely_output_is_truthful_encoding(self):
        strategy = rappor(4, 3.0)
        for user_type in range(4):
            best = np.argmax(strategy.probabilities[:, user_type])
            assert best == 1 << user_type

    def test_bitflip_factorization(self):
        # The column for type u equals independent per-bit keep/flip draws.
        epsilon, size = 0.8, 3
        strategy = rappor(size, epsilon)
        keep = np.exp(epsilon / 2) / (np.exp(epsilon / 2) + 1)
        column = strategy.probabilities[:, 1]  # one-hot = 0b010
        for output in range(8):
            bits = [(output >> j) & 1 for j in range(size)]
            expected = 1.0
            for j, bit in enumerate(bits):
                truthful = 1 if j == 1 else 0
                expected *= keep if bit == truthful else 1 - keep
            assert np.isclose(column[output], expected)

    def test_guard_on_large_domain(self):
        with pytest.raises(DomainError):
            rappor(MAX_RAPPOR_DOMAIN + 1, 1.0)

    def test_rejects_tiny_domain(self):
        with pytest.raises(DomainError):
            rappor(1, 1.0)
